(* Command-line interface to the transactional process manager:

     tpm paper               reproduce the paper's worked examples
     tpm cim                 run the CIM scenario of figure 1
     tpm random [options]    run a random workload and report metrics
     tpm serve [options]     open-world server over a Unix socket
     tpm check FILE          not provided: schedules come from the library

   See README.md for the full tour. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Cim = Tpm_workload.Cim
module Metrics = Tpm_sim.Metrics

let verdict name b = Format.printf "  %-52s %s@." name (if b then "yes" else "NO")

(* --- tpm paper --- *)
let run_paper () =
  let act ~proc ~act:n ~service ~kind = Activity.make ~proc ~act:n ~service ~kind () in
  let p1 =
    Process.make_exn ~pid:1
      ~activities:
        [
          act ~proc:1 ~act:1 ~service:"s11" ~kind:Activity.Compensatable;
          act ~proc:1 ~act:2 ~service:"s12" ~kind:Activity.Pivot;
          act ~proc:1 ~act:3 ~service:"s13" ~kind:Activity.Compensatable;
          act ~proc:1 ~act:4 ~service:"s14" ~kind:Activity.Pivot;
          act ~proc:1 ~act:5 ~service:"s15" ~kind:Activity.Retriable;
          act ~proc:1 ~act:6 ~service:"s16" ~kind:Activity.Retriable;
        ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (2, 5); (5, 6) ]
      ~pref:[ ((2, 3), (2, 5)) ]
  in
  let p2 =
    Process.make_exn ~pid:2
      ~activities:
        [
          act ~proc:2 ~act:1 ~service:"s21" ~kind:Activity.Compensatable;
          act ~proc:2 ~act:2 ~service:"s22" ~kind:Activity.Compensatable;
          act ~proc:2 ~act:3 ~service:"s23" ~kind:Activity.Pivot;
          act ~proc:2 ~act:4 ~service:"s24" ~kind:Activity.Retriable;
          act ~proc:2 ~act:5 ~service:"s25" ~kind:Activity.Retriable;
        ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5) ]
      ~pref:[]
  in
  let spec = Conflict.of_pairs [ ("s11", "s21"); ("s12", "s24"); ("s15", "s25") ] in
  let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
  Format.printf "Process P1 (figure 2):@.%a@.@." Process.pp p1;
  Format.printf "Valid executions of P1 (figure 3):@.";
  List.iter
    (fun tr ->
      Format.printf "  <%a>@."
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Activity.pp_instance)
        tr)
    (Execution.valid_executions p1);
  let s_t2 =
    Schedule.make ~spec ~procs:[ p1; p2 ]
      [ fwd p1 1; fwd p2 1; fwd p2 2; fwd p2 3; fwd p1 2; fwd p2 4; fwd p1 3 ]
  in
  let s'_t2 =
    Schedule.make ~spec ~procs:[ p1; p2 ]
      [ fwd p1 1; fwd p2 1; fwd p2 2; fwd p2 3; fwd p2 4; fwd p1 2; fwd p1 3 ]
  in
  let s''_t1 =
    Schedule.make ~spec ~procs:[ p1; p2 ]
      [ fwd p2 1; fwd p2 2; fwd p2 3; fwd p2 4; fwd p1 1; fwd p2 5; fwd p1 2; fwd p1 3 ]
  in
  Format.printf "@.Example 3/4 (figure 4):@.";
  verdict "S'_t2 (figure 4b) is serializable" (Criteria.serializable s'_t2);
  verdict "S_t2  (figure 4a) is serializable" (Criteria.serializable s_t2);
  Format.printf "@.Examples 5-8 (figures 6-8):@.";
  Format.printf "  completed(S_t2) = %a@." Schedule.pp (Completed.of_schedule s_t2);
  verdict "S_t2 is RED" (Criteria.red s_t2);
  verdict "S_t2 is PRED" (Criteria.pred s_t2);
  verdict "S''_t1 (figure 7) is PRED" (Criteria.pred s''_t1);
  Format.printf "@.Theorem 1 on these schedules:@.";
  List.iter
    (fun (name, s) ->
      if Criteria.pred s then begin
        verdict (name ^ ": committed projection serializable") (Criteria.committed_serializable s);
        verdict (name ^ ": process-recoverable") (Criteria.process_recoverable s)
      end
      else Format.printf "  %-52s (not PRED)@." name)
    [ ("S_t2", s_t2); ("S'_t2", s'_t2); ("S''_t1", s''_t1) ];
  0

(* --- tpm cim --- *)
let run_cim fail_test =
  let part = "boiler-7" in
  let parts = [ part ] in
  let fail_prob s = if fail_test && s = "test:" ^ part then 1.0 else 0.0 in
  let rms = Cim.rms ~parts ~fail_prob () in
  let config =
    {
      Scheduler.default_config with
      service_time =
        (fun s ->
          if s = "tech_doc:" ^ part then 5.0 else if s = "test:" ^ part then 3.0 else 1.0);
    }
  in
  let t = Scheduler.create ~config ~spec:(Cim.spec ~parts) ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part);
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part);
  Scheduler.run t;
  let h = Scheduler.history t in
  Format.printf "schedule:  %a@." Schedule.pp h;
  Format.printf "makespan:  %.1f@." (Scheduler.now t);
  verdict "history is PRED" (Criteria.pred h);
  0

(* --- tpm random --- *)
let run_random n conflict_density fail_rate mode weak trace seed =
  let mode =
    match mode with
    | "conservative" -> Scheduler.Conservative
    | "quasi" -> Scheduler.Quasi
    | _ -> Scheduler.Deferred
  in
  let params = { Generator.default_params with conflict_density } in
  let rms = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed () in
  let spec = Generator.spec params in
  let config = { Scheduler.default_config with mode; weak_order = weak; seed } in
  let tracer =
    (* compat form of the old global trace flag: pretty-print every event
       to stderr (equivalent to TPM_TRACE=1) *)
    if trace then
      Tpm_obs.Obs.Tracer.create ~sinks:[ Tpm_obs.Obs.Sink.stderr_pretty () ] ()
    else Tpm_obs.Obs.Tracer.disabled
  in
  let t = Scheduler.create ~config ~tracer ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p)
    (Generator.batch ~seed:(seed * 100) params ~n);
  Scheduler.run t;
  let h = Scheduler.history t in
  Format.printf "processes: %d   makespan: %.1f@." n (Scheduler.now t);
  verdict "finished" (Scheduler.finished t);
  verdict "history legal" (Schedule.legal h);
  verdict "history PRED" (Criteria.pred h);
  Format.printf "@.metrics:@.%a@." Metrics.pp_summary (Scheduler.metrics t);
  0

(* --- tpm check / tpm dot --- *)
let load path =
  match Lang.parse_file path with
  | Error e ->
      Format.eprintf "%s: %a@." path Lang.pp_error e;
      None
  | Ok doc -> Some doc

let run_check path =
  match load path with
  | None -> 1
  | Some doc ->
      List.iter
        (fun p ->
          Format.printf "process %d:@." (Process.pid p);
          (match Flex.well_formed p with
          | Ok () -> verdict "well-formed flex structure" true
          | Error issues ->
              verdict "well-formed flex structure" false;
              List.iter (fun i -> Format.printf "    - %a@." Flex.pp_issue i) issues);
          verdict "guaranteed termination" (Flex.guaranteed_termination p);
          (match Compose.classify p with
          | Ok kind ->
              Format.printf "  as a subprocess it acts as: %s@."
                (match kind with
                | Activity.Compensatable -> "compensatable"
                | Activity.Pivot -> "pivot"
                | Activity.Retriable -> "retriable")
          | Error _ -> ());
          Format.printf "  valid executions:@.";
          List.iter
            (fun tr ->
              Format.printf "    <%a>@."
                (Format.pp_print_list
                   ~pp_sep:(fun f () -> Format.fprintf f " ")
                   Activity.pp_instance)
                tr)
            (Execution.valid_executions p))
        doc.Lang.processes;
      (match doc.Lang.schedule with
      | None -> ()
      | Some s ->
          Format.printf "@.schedule: %a@." Schedule.pp s;
          verdict "legal" (Schedule.legal s);
          verdict "serializable" (Criteria.serializable s);
          verdict "reducible (RED)" (Criteria.red s);
          verdict "prefix-reducible (PRED)" (Criteria.pred s);
          verdict "process-recoverable (Proc-REC)" (Criteria.process_recoverable s);
          (match Criteria.first_irreducible_prefix s with
          | None -> ()
          | Some p ->
              Format.printf "  first irreducible prefix (%d events): %a@." (Schedule.length p)
                Schedule.pp p));
      0

let run_dot path =
  match load path with
  | None -> 1
  | Some doc ->
      List.iter (fun p -> print_string (Dot.process p)) doc.Lang.processes;
      (match doc.Lang.schedule with
      | Some s -> print_string (Dot.schedule s)
      | None -> ());
      0

(* --- tpm serve --- *)

let run_serve socket_path policy max_live queue_capacity deadline conflict_density
    fail_rate seed =
  match Tpm_server.Server.policy_of_string policy with
  | None ->
      Format.eprintf "tpm serve: unknown overload policy %S (reject|queue|degrade)@." policy;
      2
  | Some policy ->
      let module Server = Tpm_server.Server in
      let params = { Generator.default_params with conflict_density } in
      let rms = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed () in
      let spec = Generator.spec params in
      let config = { Scheduler.default_config with seed } in
      let sched = Scheduler.create ~config ~spec ~rms () in
      let scfg =
        {
          Server.default_config with
          policy;
          max_live;
          queue_capacity;
          default_deadline = deadline;
        }
      in
      let srv = Server.create ~config:scfg sched in
      if Sys.file_exists socket_path then Sys.remove socket_path;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock 8;
      let stop = ref false in
      let on_signal _ = stop := true in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Format.printf "tpm serve: listening on %s (policy %s, window %d, queue %d)@."
        socket_path (Server.policy_label policy) max_live queue_capacity;
      Format.printf "  send Lang documents terminated by a '.' line, e.g.:@.";
      Format.printf "    printf 'process 1 {\\n  1 svc0 retriable @@ss0\\n}\\n.\\n' | nc -U %s@."
        socket_path;
      (try
         while not !stop do
           match Unix.accept sock with
           | fd, _ ->
               (try Server.handle_connection srv fd
                with e ->
                  Format.eprintf "tpm serve: connection error: %s@." (Printexc.to_string e));
               Unix.close fd
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         done
       with Unix.Unix_error (Unix.EBADF, _, _) -> ());
      Format.printf "@.tpm serve: draining (stop intake, settle in-flight, seal WAL)...@.";
      Server.drain srv;
      let c = Server.counters srv in
      Format.printf
        "tpm serve: done.  offered=%d admitted=%d rejected=%d expired=%d degraded=%d@."
        c.Server.offered c.Server.admitted c.Server.rejected c.Server.expired
        c.Server.degraded;
      verdict "shed accounting exact" (Server.accounting_ok srv);
      verdict "in-flight settled" (Scheduler.finished sched);
      (try Unix.close sock with _ -> ());
      (try Sys.remove socket_path with _ -> ());
      0

(* --- systematic interleaving exploration (DPOR-lite) --- *)

let run_explore list_scenarios scenario no_prune max_branches trace_out replay
    expect_violation =
  let module E = Tpm_explore.Explore in
  let pp_script s = "[" ^ String.concat "," (List.map string_of_int s) ^ "]" in
  if list_scenarios then begin
    List.iter (fun (s : E.scenario) -> Printf.printf "%-14s %s\n" s.name s.descr)
      E.scenarios;
    0
  end
  else
    match replay with
    | Some file -> (
        match E.load_trace file with
        | Error e ->
            Printf.eprintf "tpm explore: cannot read %s: %s\n" file e;
            2
        | Ok (name, script) -> (
            match E.find_scenario name with
            | None ->
                Printf.eprintf "tpm explore: unknown scenario %s\n" name;
                2
            | Some sc -> (
                let out = E.run_branch sc ~script in
                Printf.printf "replay %s: scenario %s, script %s\n" file name
                  (pp_script script);
                match out.E.violations with
                | [] ->
                    Printf.printf "no violation reproduced\n";
                    1
                | vs ->
                    Printf.printf "reproduced: %s\n" (String.concat "; " vs);
                    print_string (Lazy.force out.E.forensics);
                    0)))
    | None -> (
        match E.find_scenario scenario with
        | None ->
            Printf.eprintf "tpm explore: unknown scenario %s (try --list)\n" scenario;
            2
        | Some sc ->
            let r =
              E.explore ~prune:(not no_prune) ~max_branches
                ~log:(fun m -> Printf.printf "  %s\n%!" m)
                sc
            in
            Printf.printf
              "%s: %d branches explored (depth <= %d), pruned %d symmetric / %d \
               sleep / %d visited, %d violating%s\n"
              sc.E.name r.E.stats.E.explored r.E.stats.E.max_depth
              r.E.stats.E.pruned_symmetry r.E.stats.E.pruned_sleep
              r.E.stats.E.pruned_visited (List.length r.E.found)
              (if r.E.stats.E.truncated then " [TRUNCATED]" else "");
            (match r.E.found with
            | [] -> ()
            | first :: _ ->
                List.iter
                  (fun (f : E.found) ->
                    Printf.printf "  VIOLATION at %s (minimized %s): %s\n"
                      (pp_script f.E.script) (pp_script f.E.minimized)
                      (String.concat "; " f.E.violations))
                  r.E.found;
                E.save_trace ~path:trace_out sc first.E.minimized;
                Printf.printf "  minimized trace written to %s\n" trace_out;
                let out = E.run_branch sc ~script:first.E.minimized in
                print_string (Lazy.force out.E.forensics));
            let bad = r.E.found <> [] in
            if expect_violation then if bad then 0 else 1 else if bad then 1 else 0)

(* --- command line --- *)
open Cmdliner

let paper_cmd =
  Cmd.v (Cmd.info "paper" ~doc:"Reproduce the paper's worked examples (figures 2-8)")
    Term.(const run_paper $ const ())

let cim_cmd =
  let fail_test =
    Arg.(value & flag & info [ "fail-test" ] ~doc:"Inject a failure of the test activity")
  in
  Cmd.v (Cmd.info "cim" ~doc:"Run the CIM scenario of figure 1")
    Term.(const run_cim $ fail_test)

let random_cmd =
  let n = Arg.(value & opt int 8 & info [ "n"; "processes" ] ~doc:"Number of processes") in
  let density =
    Arg.(value & opt float 0.2 & info [ "conflicts" ] ~doc:"Conflict density in [0,1]")
  in
  let fail_rate =
    Arg.(value & opt float 0.1 & info [ "failures" ] ~doc:"Failure injection rate in [0,1]")
  in
  let mode =
    Arg.(
      value
      & opt string "deferred"
      & info [ "mode" ] ~doc:"Scheduler mode: conservative, deferred or quasi")
  in
  let weak = Arg.(value & flag & info [ "weak" ] ~doc:"Enable the weak order (Section 3.6)") in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Pretty-print every scheduler trace event to stderr (same as \
             setting TPM_TRACE=1)")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  Cmd.v (Cmd.info "random" ~doc:"Run a random workload through the scheduler")
    Term.(const run_random $ n $ density $ fail_rate $ mode $ weak $ trace $ seed)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .tpm document")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Validate the processes and schedule of a .tpm document")
    Term.(const run_check $ file_arg)

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Render a .tpm document as Graphviz DOT")
    Term.(const run_dot $ file_arg)

let serve_cmd =
  let socket =
    Arg.(
      value & opt string "/tmp/tpm.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket to listen on")
  in
  let policy =
    Arg.(
      value & opt string "queue"
      & info [ "policy" ] ~docv:"POLICY" ~doc:"Overload policy: reject, queue or degrade")
  in
  let max_live =
    Arg.(value & opt int 32 & info [ "max-live" ] ~doc:"In-flight admission window")
  in
  let queue_capacity =
    Arg.(value & opt int 64 & info [ "queue-capacity" ] ~doc:"Bounded admission queue size")
  in
  let deadline =
    Arg.(
      value & opt float 10.0
      & info [ "deadline" ] ~doc:"Virtual-time budget before a queued submission is shed")
  in
  let density =
    Arg.(value & opt float 0.2 & info [ "conflicts" ] ~doc:"Conflict density in [0,1]")
  in
  let fail_rate =
    Arg.(value & opt float 0.0 & info [ "failures" ] ~doc:"Failure injection rate in [0,1]")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the open-world process server: accept Lang documents over a Unix \
          socket under a bounded admission window with an explicit overload \
          policy; SIGTERM/SIGINT drains gracefully")
    Term.(
      const run_serve $ socket $ policy $ max_live $ queue_capacity $ deadline $ density
      $ fail_rate $ seed)

let explore_cmd =
  let list_scenarios =
    Arg.(value & flag & info [ "list" ] ~doc:"List the built-in scenarios")
  in
  let scenario =
    Arg.(
      value & opt string "lemma1"
      & info [ "scenario" ] ~docv:"NAME" ~doc:"Scenario to explore (see --list)")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:"Enumerate the full interleaving tree (cross-validation mode)")
  in
  let max_branches =
    Arg.(value & opt int 20000 & info [ "max-branches" ] ~doc:"Branch cap")
  in
  let trace_out =
    Arg.(
      value
      & opt string "explore-trace.txt"
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Where the minimized violating trace is written")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded trace instead of exploring; exits 0 iff the \
             violation reproduces")
  in
  let expect_violation =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:
            "Invert the exit sense: succeed iff a violation was found (the \
             mutation self-test)")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Systematically explore scheduler interleavings (DPOR-lite) and check \
          every branch against the correctness oracles")
    Term.(
      const run_explore $ list_scenarios $ scenario $ no_prune $ max_branches
      $ trace_out $ replay $ expect_violation)

let () =
  let doc = "transactional process management (PODS'99 reproduction)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "tpm" ~doc)
          [ paper_cmd; cim_cmd; random_cmd; check_cmd; dot_cmd; serve_cmd; explore_cmd ]))

(* Randomized stress of the scheduler: many seeds, modes and failure
   rates; checks termination, legality and PRED of every emitted history. *)
open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator

let () =
  let failures = ref 0 in
  let runs = ref 0 in
  let modes = [ ("conservative", Scheduler.Conservative); ("deferred", Scheduler.Deferred);
                ("quasi", Scheduler.Quasi) ] in
  for seed = 41 to 120 do
    List.iter
      (fun (mode_name, mode) ->
        List.iter
          (fun fail_rate ->
            incr runs;
            let params =
              { Generator.default_params with services = 8; conflict_density = 0.4 }
            in
            let rms = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed () in
            let spec = Generator.spec params in
            let config = { Scheduler.default_config with mode; seed } in
            let t = Scheduler.create ~config ~spec ~rms () in
            List.iteri
              (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p)
              (Generator.batch ~seed:(seed * 100) params ~n:8);
            (try Scheduler.run ~until:100000.0 t
             with e ->
               incr failures;
               Format.printf "seed=%d mode=%s fail=%.2f EXCEPTION %s@." seed mode_name
                 fail_rate (Printexc.to_string e));
            let h = Scheduler.history t in
            let ok_finished = Scheduler.finished t in
            let ok_legal = Schedule.legal h in
            let ok_pred = Criteria.pred h in
            if not (ok_finished && ok_legal && ok_pred) then begin
              incr failures;
              Format.printf "seed=%d mode=%s fail=%.2f finished=%b legal=%b pred=%b@." seed
                mode_name fail_rate ok_finished ok_legal ok_pred
            end)
          [ 0.0; 0.1; 0.3 ])
      modes
  done;
  Format.printf "stress: %d runs, %d failures@." !runs !failures;
  exit (if !failures = 0 then 0 else 1)

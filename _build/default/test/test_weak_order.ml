(* Weak vs. strong orders (Section 3.6): under the weak order conflicting
   activities of different processes overlap their execution while the
   subsystem enforces the commit order; a retriable re-invocation restarts
   the dependent local transaction. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Metrics = Tpm_sim.Metrics

let check = Alcotest.check

(* two single-activity processes on the same conflicting service *)
let conflicting_pair ~kind =
  let mk pid =
    Process.make_exn ~pid
      ~activities:
        [ Activity.make ~proc:pid ~act:1 ~service:"svc0" ~kind ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  (mk 1, mk 2)

let params = { Generator.default_params with services = 2; subsystems = 1 }

let run_pair ~weak_order ~kind =
  let rms = Generator.rms params () in
  let spec = Generator.spec params in
  let config = { Scheduler.default_config with weak_order } in
  let t = Scheduler.create ~config ~spec ~rms () in
  let p1, p2 = conflicting_pair ~kind in
  Scheduler.submit t p1;
  Scheduler.submit t ~at:0.1 p2;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "RED" true (Criteria.red h);
  (t, h)

let test_weak_overlaps () =
  (* strong: P2 starts only after P1's commit -> makespan past 2.0;
     weak: executions overlap, P2 commits just after P1 -> makespan ~1.x *)
  let t_strong, _ = run_pair ~weak_order:false ~kind:Activity.Compensatable in
  let t_weak, _ = run_pair ~weak_order:true ~kind:Activity.Compensatable in
  check Alcotest.bool "weak order shortens the makespan" true
    (Scheduler.now t_weak < Scheduler.now t_strong);
  check Alcotest.bool "strong order serializes executions" true
    (Scheduler.now t_strong >= 2.0)

let test_weak_commit_order_respected () =
  let _, h = run_pair ~weak_order:true ~kind:Activity.Compensatable in
  (* the history must order the two conflicting occurrences P1 before P2 *)
  let acts = Schedule.activities h in
  check Alcotest.int "both occurrences present" 2 (List.length acts);
  (match acts with
  | [ first; second ] ->
      check Alcotest.int "P1 commits first" 1 (Activity.instance_proc first);
      check Alcotest.int "P2 commits second" 2 (Activity.instance_proc second)
  | _ -> Alcotest.fail "unexpected history");
  check Alcotest.bool "serializable" true (Criteria.serializable h)

let test_weak_restart_on_retry () =
  (* the predecessor is retriable and fails a few times: the weakly-ordered
     successor must restart with it *)
  (* every svc0 invocation fails until the guaranteed third attempt *)
  let reg = Tpm_subsys.Service.Registry.create () in
  let () =
    Tpm_subsys.Service.Registry.register reg
      (Tpm_subsys.Service.make ~name:"svc0" ~reads:[ "k0" ] ~writes:[ "k0" ]
         ~compensation:(Tpm_subsys.Service.Inverse_service "svc0_inv")
         (fun tx ~args:_ ->
           Tpm_kv.Tx.set tx "k0" (Tpm_kv.Value.Int 1);
           Tpm_kv.Value.Int 1));
    Tpm_subsys.Service.Registry.register reg
      (Tpm_subsys.Service.make ~name:"svc0_inv" ~reads:[ "k0" ] ~writes:[ "k0" ]
         (fun tx ~args:_ ->
           Tpm_kv.Tx.delete tx "k0";
           Tpm_kv.Value.Nil))
  in
  let rms =
    [ Tpm_subsys.Rm.create ~name:"ss0" ~registry:reg ~fail_prob:(fun _ -> 1.0)
        ~max_failures:3 () ]
  in
  let spec = Generator.spec params in
  let config = { Scheduler.default_config with weak_order = true } in
  let t = Scheduler.create ~config ~spec ~rms () in
  let p1, p2 = conflicting_pair ~kind:Activity.Retriable in
  Scheduler.submit t p1;
  Scheduler.submit t ~at:0.1 p2;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "restarts observed" true
    (Metrics.count (Scheduler.metrics t) "weak_restarts" > 0);
  check Alcotest.bool "RED" true (Criteria.red (Scheduler.history t))

let test_weak_random_workload_still_pred () =
  let wparams = { Generator.default_params with services = 8; conflict_density = 0.3 } in
  let rms = Generator.rms wparams () in
  let spec = Generator.spec wparams in
  let config = { Scheduler.default_config with weak_order = true } in
  let t = Scheduler.create ~config ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
    (Generator.batch ~seed:21 wparams ~n:6);
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h)

let suite =
  [
    Alcotest.test_case "weak order overlaps executions" `Quick test_weak_overlaps;
    Alcotest.test_case "weak order preserves commit order" `Quick test_weak_commit_order_respected;
    Alcotest.test_case "retriable retry restarts dependents" `Quick test_weak_restart_on_retry;
    Alcotest.test_case "weak order keeps histories PRED" `Quick test_weak_random_workload_still_pred;
  ]

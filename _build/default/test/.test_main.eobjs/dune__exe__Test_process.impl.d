test/test_process.ml: Activity Alcotest Fixtures List Printf Process Tpm_core

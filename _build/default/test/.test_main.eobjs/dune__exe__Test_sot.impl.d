test/test_sot.ml: Activity Alcotest Completed Conflict Criteria Execution Hashtbl List Printf Process Schedule Tpm_core Tpm_sim Tpm_workload

test/test_lang.ml: Alcotest Conflict Criteria Flex Format Lang List Printf Process Result Schedule String Sys Tpm_core Tpm_workload

test/test_builder.ml: Activity Alcotest Builder Compose Dot Execution Fixtures Flex Format List Process Result Schedule String Tpm_core

test/test_weak_order.ml: Activity Alcotest Criteria List Process Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_sim Tpm_subsys Tpm_workload

test/test_composite.ml: Activity Alcotest Fixtures List Process Schedule Tpm_composite Tpm_core

test/test_workloads.ml: Alcotest Conflict Criteria Flex List Process Result Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_subsys Tpm_workload

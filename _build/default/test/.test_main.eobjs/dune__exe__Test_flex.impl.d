test/test_flex.ml: Activity Alcotest Fixtures Flex List Printf Process Result Tpm_core

test/test_sim.ml: Alcotest Digraph List Tpm_core Tpm_sim

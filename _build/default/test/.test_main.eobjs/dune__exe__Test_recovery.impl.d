test/test_recovery.ml: Activity Alcotest Criteria Execution Filename Fixtures Hashtbl List Option Printf Schedule String Sys Tpm_core Tpm_kv Tpm_scheduler Tpm_subsys Tpm_wal Tpm_workload

test/test_scheduler.ml: Activity Alcotest Criteria List Process Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_sim Tpm_subsys Tpm_wal Tpm_workload

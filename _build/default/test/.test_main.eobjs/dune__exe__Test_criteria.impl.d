test/test_criteria.ml: Activity Alcotest Completed Conflict Criteria Execution Fixtures Format List Process Reduction Schedule Tpm_core

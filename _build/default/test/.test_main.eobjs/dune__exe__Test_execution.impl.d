test/test_execution.ml: Activity Alcotest Execution Fixtures List Printf Process Tpm_core

test/fixtures.ml: Activity Alcotest Conflict Process Tpm_core

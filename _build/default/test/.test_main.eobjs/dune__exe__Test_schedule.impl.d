test/test_schedule.ml: Activity Alcotest Criteria Execution Fixtures List Schedule Tpm_core

test/test_substrate.ml: Alcotest List Tpm_core Tpm_kv Tpm_subsys Tpm_twopc

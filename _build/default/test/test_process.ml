(* Unit tests for the process model (Definition 5) and validation. *)

open Tpm_core
open Fixtures

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_list = Alcotest.(list int)

let test_accessors () =
  check Alcotest.int "P1 size" 6 (Process.size p1);
  check int_list "roots of P1" [ 1 ] (Process.roots p1);
  check int_list "succs of a12" [ 3; 5 ] (Process.succs p1 2);
  check int_list "preds of a16" [ 5 ] (Process.preds p1 6);
  check bool_ "a11 << a14 transitively" true (Process.before p1 1 4);
  check bool_ "a13 not << a15" false (Process.before p1 3 5);
  check bool_ "a15 not << a13" false (Process.before p1 5 3)

let test_alternatives () =
  check int_list "alternatives of a12 preference-ordered" [ 3; 5 ] (Process.alternatives p1 2);
  check int_list "a12 has no unconditional successor" [] (Process.unconditional_succs p1 2);
  check int_list "choice points of P1" [ 2 ] (Process.choice_points p1);
  check int_list "P2 has no choice point" [] (Process.choice_points p2)

let test_preferred_path () =
  check int_list "preferred path of P1" [ 1; 2; 3; 4 ] (Process.preferred_path p1);
  check Alcotest.(option int) "state-determining of P1 is a12" (Some 2)
    (Process.state_determining p1);
  check Alcotest.(option int) "state-determining of P2 is a23" (Some 3)
    (Process.state_determining p2)

let test_non_compensatable () =
  check int_list "non-compensatable ids of P1" [ 2; 4; 5; 6 ] (Process.non_compensatable_ids p1)

let mk_act n kind = act ~proc:9 ~act:n ~service:(Printf.sprintf "x%d" n) ~kind

let test_validation_cycle () =
  match
    Process.make ~pid:9
      ~activities:[ mk_act 1 Activity.Compensatable; mk_act 2 Activity.Compensatable ]
      ~prec:[ (1, 2); (2, 1) ]
      ~pref:[]
  with
  | Ok _ -> Alcotest.fail "cycle accepted"
  | Error errs ->
      check bool_ "reports a precedence cycle" true
        (List.exists (function Process.Precedence_cycle _ -> true | _ -> false) errs)

let test_validation_duplicate () =
  match
    Process.make ~pid:9
      ~activities:[ mk_act 1 Activity.Pivot; mk_act 1 Activity.Pivot ]
      ~prec:[] ~pref:[]
  with
  | Ok _ -> Alcotest.fail "duplicate accepted"
  | Error errs ->
      check bool_ "reports duplicate" true
        (List.exists (function Process.Duplicate_activity 1 -> true | _ -> false) errs)

let test_validation_pref_sibling () =
  match
    Process.make ~pid:9
      ~activities:[ mk_act 1 Activity.Compensatable; mk_act 2 Activity.Pivot; mk_act 3 Activity.Retriable ]
      ~prec:[ (1, 2); (2, 3) ]
      ~pref:[ ((1, 2), (2, 3)) ]
  with
  | Ok _ -> Alcotest.fail "non-sibling preference accepted"
  | Error errs ->
      check bool_ "reports non-sibling" true
        (List.exists (function Process.Preference_not_sibling _ -> true | _ -> false) errs)

let test_validation_pref_total () =
  (* three alternatives where only two pairs are related: not a chain *)
  let acts =
    [ mk_act 1 Activity.Compensatable; mk_act 2 Activity.Retriable; mk_act 3 Activity.Retriable;
      mk_act 4 Activity.Retriable ]
  in
  match
    Process.make ~pid:9 ~activities:acts
      ~prec:[ (1, 2); (1, 3); (1, 4) ]
      ~pref:[ ((1, 2), (1, 3)); ((1, 2), (1, 4)) ]
  with
  | Ok _ -> Alcotest.fail "partial preference accepted"
  | Error errs ->
      check bool_ "reports non-total preference" true
        (List.exists (function Process.Preference_cycle 1 -> true | _ -> false) errs)

let test_validation_unknown_endpoint () =
  match
    Process.make ~pid:9 ~activities:[ mk_act 1 Activity.Pivot ] ~prec:[ (1, 7) ] ~pref:[]
  with
  | Ok _ -> Alcotest.fail "unknown endpoint accepted"
  | Error errs ->
      check bool_ "reports unknown endpoint" true
        (List.exists (function Process.Unknown_endpoint (1, 7) -> true | _ -> false) errs)

let test_validation_empty () =
  match Process.make ~pid:9 ~activities:[] ~prec:[] ~pref:[] with
  | Ok _ -> Alcotest.fail "empty process accepted"
  | Error errs -> check bool_ "reports no activities" true (List.mem Process.No_activities errs)

let test_validation_self_edge () =
  match Process.make ~pid:9 ~activities:[ mk_act 1 Activity.Pivot ] ~prec:[ (1, 1) ] ~pref:[] with
  | Ok _ -> Alcotest.fail "self edge accepted"
  | Error errs ->
      check bool_ "reports self edge" true
        (List.exists (function Process.Self_edge 1 -> true | _ -> false) errs)

let test_pref_chain_of_three () =
  (* a total chain of three alternatives is accepted and ordered *)
  let acts =
    [ mk_act 1 Activity.Compensatable; mk_act 2 Activity.Retriable; mk_act 3 Activity.Retriable;
      mk_act 4 Activity.Retriable ]
  in
  let p =
    Process.make_exn ~pid:9 ~activities:acts
      ~prec:[ (1, 2); (1, 3); (1, 4) ]
      ~pref:[ ((1, 2), (1, 3)); ((1, 3), (1, 4)); ((1, 2), (1, 4)) ]
  in
  check int_list "ordered alternatives" [ 2; 3; 4 ] (Process.alternatives p 1)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "alternatives" `Quick test_alternatives;
    Alcotest.test_case "preferred path and state-determining" `Quick test_preferred_path;
    Alcotest.test_case "non-compensatable ids" `Quick test_non_compensatable;
    Alcotest.test_case "rejects precedence cycle" `Quick test_validation_cycle;
    Alcotest.test_case "rejects duplicate activity" `Quick test_validation_duplicate;
    Alcotest.test_case "rejects non-sibling preference" `Quick test_validation_pref_sibling;
    Alcotest.test_case "rejects non-total preference" `Quick test_validation_pref_total;
    Alcotest.test_case "rejects unknown endpoint" `Quick test_validation_unknown_endpoint;
    Alcotest.test_case "rejects empty process" `Quick test_validation_empty;
    Alcotest.test_case "rejects self edge" `Quick test_validation_self_edge;
    Alcotest.test_case "accepts chain of three alternatives" `Quick test_pref_chain_of_three;
  ]

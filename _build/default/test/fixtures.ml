(* Shared fixtures: the processes and conflict specification of the paper's
   running example (figures 2, 4, 6, 7, 8, 9). *)

open Tpm_core

let act ~proc ~act:n ~service ~kind = Activity.make ~proc ~act:n ~service ~kind ()

(* Process P1 (figure 2):
   a11^c << a12^p << a13^c << a14^p, alternative a12 << a15^r << a16^r,
   with (a12 << a13) preferred over (a12 << a15). *)
let p1 =
  Process.make_exn ~pid:1
    ~activities:
      [
        act ~proc:1 ~act:1 ~service:"s11" ~kind:Activity.Compensatable;
        act ~proc:1 ~act:2 ~service:"s12" ~kind:Activity.Pivot;
        act ~proc:1 ~act:3 ~service:"s13" ~kind:Activity.Compensatable;
        act ~proc:1 ~act:4 ~service:"s14" ~kind:Activity.Pivot;
        act ~proc:1 ~act:5 ~service:"s15" ~kind:Activity.Retriable;
        act ~proc:1 ~act:6 ~service:"s16" ~kind:Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3); (3, 4); (2, 5); (5, 6) ]
    ~pref:[ ((2, 3), (2, 5)) ]

(* Process P2 (figure 4): a21^c << a22^c << a23^p << a24^r << a25^r. *)
let p2 =
  Process.make_exn ~pid:2
    ~activities:
      [
        act ~proc:2 ~act:1 ~service:"s21" ~kind:Activity.Compensatable;
        act ~proc:2 ~act:2 ~service:"s22" ~kind:Activity.Compensatable;
        act ~proc:2 ~act:3 ~service:"s23" ~kind:Activity.Pivot;
        act ~proc:2 ~act:4 ~service:"s24" ~kind:Activity.Retriable;
        act ~proc:2 ~act:5 ~service:"s25" ~kind:Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5) ]
    ~pref:[]

(* Process P3 (figure 9): a31^c << a32^p; a31 conflicts with a11. *)
let p3 =
  Process.make_exn ~pid:3
    ~activities:
      [
        act ~proc:3 ~act:1 ~service:"s31" ~kind:Activity.Compensatable;
        act ~proc:3 ~act:2 ~service:"s32" ~kind:Activity.Pivot;
      ]
    ~prec:[ (1, 2) ]
    ~pref:[]

(* Conflicts of figure 4: (a11, a21), (a12, a24), (a15, a25);
   plus figure 9: (a11, a31). *)
let spec =
  Conflict.of_pairs
    [ ("s11", "s21"); ("s12", "s24"); ("s15", "s25"); ("s11", "s31") ]

let a1 n = Process.find p1 n
let a2 n = Process.find p2 n
let a3 n = Process.find p3 n

let fwd1 n = Activity.Forward (a1 n)
let fwd2 n = Activity.Forward (a2 n)
let fwd3 n = Activity.Forward (a3 n)
let inv1 n = Activity.Inverse (a1 n)
let inv3 n = Activity.Inverse (a3 n)

(* Alcotest testables *)
let instance = Alcotest.testable Activity.pp_instance Activity.instance_equal
let instance_list = Alcotest.list instance

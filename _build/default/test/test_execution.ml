(* Tests of the single-process operational semantics, including the paper's
   Example 1 / figure 3 (the four valid executions of P1) and Example 2
   (the completion of P1 in both recovery states). *)

open Tpm_core
open Fixtures

let check = Alcotest.check

let exec_seq s ns = List.fold_left Execution.exec s ns

(* E1 — figure 3: the four valid executions of P1. *)
let test_valid_executions_p1 () =
  let expected =
    List.sort compare
      [
        [ fwd1 1; fwd1 2; fwd1 3; fwd1 4 ];
        (* a13 fails -> alternative branch *)
        [ fwd1 1; fwd1 2; fwd1 5; fwd1 6 ];
        (* a14 fails -> compensate a13, alternative branch *)
        [ fwd1 1; fwd1 2; fwd1 3; inv1 3; fwd1 5; fwd1 6 ];
        (* a12 (pivot) fails -> full backward recovery *)
        [ fwd1 1; inv1 1 ];
      ]
  in
  check (Alcotest.list instance_list) "exactly the four executions of figure 3" expected
    (Execution.valid_executions p1)

let test_happy_path () =
  let s = Execution.start p1 in
  check Alcotest.(list int) "initially a11 enabled" [ 1 ] (Execution.enabled s);
  let s = exec_seq s [ 1; 2; 3; 4 ] in
  check Alcotest.bool "can commit after preferred path" true (Execution.can_commit s);
  let s = Execution.commit s in
  check instance_list "effective trace" [ fwd1 1; fwd1 2; fwd1 3; fwd1 4 ]
    (Execution.effective_trace s)

let test_recovery_state () =
  let s = Execution.start p1 in
  check Alcotest.bool "B-REC initially" true (Execution.recovery_state s = Execution.B_rec);
  let s = Execution.exec s 1 in
  check Alcotest.bool "still B-REC after a11" true (Execution.recovery_state s = Execution.B_rec);
  let s = Execution.exec s 2 in
  check Alcotest.bool "F-REC after pivot a12" true (Execution.recovery_state s = Execution.F_rec)

(* E2 — Example 2: completions in both states. *)
let test_completion_b_rec () =
  let s = Execution.exec (Execution.start p1) 1 in
  check instance_list "C(P1) in B-REC = {a11^-1}" [ inv1 1 ] (Execution.completion s)

let test_completion_f_rec () =
  let s = exec_seq (Execution.start p1) [ 1; 2; 3 ] in
  check instance_list "C(P1) after a13 = {a13^-1 << a15 << a16}"
    [ inv1 3; fwd1 5; fwd1 6 ]
    (Execution.completion s)

let test_completion_after_pivot_a14 () =
  let s = exec_seq (Execution.start p1) [ 1; 2; 3; 4 ] in
  check instance_list "C(P1) after a14 is empty" [] (Execution.completion s)

let test_completion_p2_at_t2 () =
  let s = exec_seq (Execution.start p2) [ 1; 2; 3; 4 ] in
  check instance_list "C(P2) = {a25}" [ fwd2 5 ] (Execution.completion s)

let test_abort_b_rec () =
  let s = exec_seq (Execution.start p2) [ 1; 2 ] in
  let s = Execution.abort s in
  check Alcotest.bool "aborted with no effects" true
    (Execution.status s = Execution.Finished Execution.Aborted);
  check instance_list "all compensated in reverse order"
    [ fwd2 1; fwd2 2; Activity.Inverse (a2 2); Activity.Inverse (a2 1) ]
    (Execution.effective_trace s)

let test_abort_f_rec_commits () =
  let s = exec_seq (Execution.start p1) [ 1; 2; 3 ] in
  let s = Execution.abort s in
  check Alcotest.bool "abort in F-REC terminates committing" true
    (Execution.status s = Execution.Finished Execution.Committed);
  check instance_list "completion appended"
    [ fwd1 1; fwd1 2; fwd1 3; inv1 3; fwd1 5; fwd1 6 ]
    (Execution.effective_trace s)

let test_fail_a13_switches_branch () =
  let s = exec_seq (Execution.start p1) [ 1; 2 ] in
  let s = Execution.fail s 3 in
  check Alcotest.(list int) "a15 enabled after a13 failed" [ 5 ] (Execution.enabled s);
  let s = exec_seq s [ 5; 6 ] in
  check Alcotest.bool "commit via alternative" true (Execution.can_commit s)

let test_fail_a14_compensates_a13 () =
  let s = exec_seq (Execution.start p1) [ 1; 2; 3 ] in
  let s = Execution.fail s 4 in
  check instance_list "a13 compensated" [ fwd1 1; fwd1 2; fwd1 3; inv1 3 ]
    (Execution.effective_trace s);
  check Alcotest.(list int) "a15 now enabled" [ 5 ] (Execution.enabled s)

let test_fail_pivot_backward () =
  let s = Execution.exec (Execution.start p1) 1 in
  let s = Execution.fail s 2 in
  check Alcotest.bool "process aborted" true
    (Execution.status s = Execution.Finished Execution.Aborted);
  check instance_list "a11 compensated" [ fwd1 1; inv1 1 ] (Execution.effective_trace s)

let test_fail_retriable_is_retry () =
  let s = exec_seq (Execution.start p2) [ 1; 2; 3; 4 ] in
  let s = Execution.fail s 5 in
  check Alcotest.bool "still running" true (Execution.status s = Execution.Running);
  check Alcotest.(list int) "a25 still enabled" [ 5 ] (Execution.enabled s);
  let s = Execution.exec s 5 in
  check Alcotest.bool "commit after retry" true (Execution.can_commit s)

let test_exec_not_enabled_raises () =
  let s = Execution.start p1 in
  Alcotest.check_raises "exec of a non-enabled activity raises"
    (Invalid_argument "Execution.exec: activity 3 is not enabled") (fun () ->
      ignore (Execution.exec s 3))

let test_stuck_process () =
  (* pivot followed by a lone pivot with no alternative: failure after the
     state-determining activity must raise Stuck *)
  let acts =
    [
      act ~proc:7 ~act:1 ~service:"y1" ~kind:Activity.Pivot;
      act ~proc:7 ~act:2 ~service:"y2" ~kind:Activity.Pivot;
    ]
  in
  let p = Process.make_exn ~pid:7 ~activities:acts ~prec:[ (1, 2) ] ~pref:[] in
  let s = Execution.exec (Execution.start p) 1 in
  match Execution.fail s 2 with
  | exception Execution.Stuck _ -> ()
  | _ -> Alcotest.fail "expected Stuck"

let test_nested_alternative () =
  (* choice inside an alternative branch: failing deep backtracks locally
     first, then to the outer choice point. *)
  let c n = act ~proc:8 ~act:n ~service:(Printf.sprintf "z%d" n) ~kind:Activity.Compensatable in
  let r n = act ~proc:8 ~act:n ~service:(Printf.sprintf "z%d" n) ~kind:Activity.Retriable in
  (* 1 -> (2 -> (3 | 4)) | 5   where | are alternatives *)
  let p =
    Process.make_exn ~pid:8
      ~activities:[ c 1; c 2; c 3; c 4; r 5 ]
      ~prec:[ (1, 2); (2, 3); (2, 4); (1, 5) ]
      ~pref:[ ((2, 3), (2, 4)); ((1, 2), (1, 5)) ]
  in
  let s = Execution.exec (Execution.start p) 1 in
  let s = Execution.exec s 2 in
  (* a3 fails: inner alternative a4 *)
  let s = Execution.fail s 3 in
  check Alcotest.(list int) "a4 enabled" [ 4 ] (Execution.enabled s);
  (* a4 fails too: backtrack to outer choice, compensating a2 *)
  let s = Execution.fail s 4 in
  check Alcotest.(list int) "a5 enabled" [ 5 ] (Execution.enabled s);
  check instance_list "a2 compensated on outer backtrack"
    [ Activity.Forward (Process.find p 1); Activity.Forward (Process.find p 2);
      Activity.Inverse (Process.find p 2) ]
    (Execution.effective_trace s)

let suite =
  [
    Alcotest.test_case "E1: four valid executions of P1 (fig. 3)" `Quick test_valid_executions_p1;
    Alcotest.test_case "happy path" `Quick test_happy_path;
    Alcotest.test_case "recovery state transitions" `Quick test_recovery_state;
    Alcotest.test_case "E2: completion in B-REC" `Quick test_completion_b_rec;
    Alcotest.test_case "E2: completion in F-REC" `Quick test_completion_f_rec;
    Alcotest.test_case "completion empty after final pivot" `Quick test_completion_after_pivot_a14;
    Alcotest.test_case "completion of P2 at t2" `Quick test_completion_p2_at_t2;
    Alcotest.test_case "abort in B-REC leaves nothing" `Quick test_abort_b_rec;
    Alcotest.test_case "abort in F-REC terminates forward" `Quick test_abort_f_rec_commits;
    Alcotest.test_case "a13 failure switches branch" `Quick test_fail_a13_switches_branch;
    Alcotest.test_case "a14 failure compensates a13" `Quick test_fail_a14_compensates_a13;
    Alcotest.test_case "pivot failure triggers backward recovery" `Quick test_fail_pivot_backward;
    Alcotest.test_case "retriable failure is a retry" `Quick test_fail_retriable_is_retry;
    Alcotest.test_case "exec not enabled raises" `Quick test_exec_not_enabled_raises;
    Alcotest.test_case "stuck process raises" `Quick test_stuck_process;
    Alcotest.test_case "nested alternatives backtrack" `Quick test_nested_alternative;
  ]

(* Reproduction of the paper's Examples 5-10: completed schedules,
   reduction, RED, PRED, Proc-REC and the quasi-commit of figure 9. *)

open Tpm_core
open Fixtures

let check = Alcotest.check
let act i = Schedule.Act i

let s_t2 =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ act (fwd1 1); act (fwd2 1); act (fwd2 2); act (fwd2 3); act (fwd1 2); act (fwd2 4);
      act (fwd1 3) ]

let s_t1 =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ act (fwd1 1); act (fwd2 1); act (fwd2 2); act (fwd2 3) ]

(* Figure 7: the prefix-reducible execution S''_{t1}: P2 runs (mostly)
   ahead, every conflict is ordered P2 -> P1. *)
let s''_t1 =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ act (fwd2 1); act (fwd2 2); act (fwd2 3); act (fwd2 4); act (fwd1 1); act (fwd2 5);
      act (fwd1 2); act (fwd1 3) ]

(* Figure 9: quasi-commit of non-compensatable activities. *)
let s_star =
  Schedule.make ~spec ~procs:[ p1; p3 ]
    [ act (fwd1 1); act (fwd1 2); act (fwd3 1); act (fwd3 2) ]

let positions_of s insts =
  let acts = Schedule.activities s in
  List.map
    (fun inst ->
      let rec find i = function
        | [] -> Alcotest.fail (Format.asprintf "%a not in schedule" Activity.pp_instance inst)
        | x :: rest -> if Activity.instance_equal x inst then i else find (i + 1) rest
      in
      find 0 acts)
    insts

(* Example 5: the completed schedule of S_t2. *)
let test_example5_completed () =
  let comp = Completed.of_schedule s_t2 in
  let acts = Schedule.activities comp in
  check Alcotest.int "11 activity occurrences" 11 (List.length acts);
  (* added: a13^-1, a15, a16 from C(P1) and a25 from C(P2) *)
  List.iter
    (fun inst ->
      check Alcotest.bool
        (Format.asprintf "%a present" Activity.pp_instance inst)
        true
        (List.exists (Activity.instance_equal inst) acts))
    [ inv1 3; fwd1 5; fwd1 6; fwd2 5 ];
  (* order constraints of the paper: a13 << a13^-1 << a15 << a16, a24 << a25,
     a15 << a25 *)
  (match positions_of comp [ fwd1 3; inv1 3; fwd1 5; fwd1 6; fwd2 4; fwd2 5 ] with
  | [ p13; p13i; p15; p16; p24; p25 ] ->
      check Alcotest.bool "a13 << a13^-1" true (p13 < p13i);
      check Alcotest.bool "a13^-1 << a15" true (p13i < p15);
      check Alcotest.bool "a15 << a16" true (p15 < p16);
      check Alcotest.bool "a24 << a25" true (p24 < p25);
      check Alcotest.bool "a15 << a25 (Lemma of Def 8.3d)" true (p15 < p25)
  | _ -> assert false);
  check Alcotest.bool "completed schedule is serializable" true (Criteria.serializable comp);
  check Alcotest.bool "every process commits in the completed schedule" true
    (Schedule.active comp = [] && Schedule.aborted comp = [])

(* Example 6: reduction removes exactly the pair (a13, a13^-1); S_t2 is RED. *)
let test_example6_reduction () =
  let comp = Completed.of_schedule s_t2 in
  let reduced = Reduction.reduce ~original:s_t2 comp in
  let acts = Schedule.activities reduced in
  check Alcotest.int "9 occurrences after reduction" 9 (List.length acts);
  check Alcotest.bool "a13 removed" false (List.exists (Activity.instance_equal (fwd1 3)) acts);
  check Alcotest.bool "a13^-1 removed" false (List.exists (Activity.instance_equal (inv1 3)) acts);
  check Alcotest.bool "S_t2 is RED" true (Criteria.red s_t2)

(* Example 8: the prefix S_t1 is not reducible, hence S_t2 is not PRED. *)
let test_example8_not_pred () =
  check Alcotest.bool "S_t1 is not RED" false (Criteria.red s_t1);
  check Alcotest.bool "S_t2 is not PRED" false (Criteria.pred s_t2);
  match Criteria.first_irreducible_prefix s_t2 with
  | None -> Alcotest.fail "expected an irreducible prefix"
  | Some prefix ->
      check Alcotest.bool "the irreducible prefix ends at or before t1" true
        (Schedule.length prefix <= Schedule.length s_t1)

(* Examples 7 and 9: S''_t1 is RED and PRED. *)
let test_example7_9_pred () =
  check Alcotest.bool "S''_t1 is legal" true (Schedule.legal s''_t1);
  check Alcotest.bool "S''_t1 is RED (Example 7)" true (Criteria.red s''_t1);
  check Alcotest.bool "S''_t1 is PRED (Example 9)" true (Criteria.pred s''_t1)

(* Example 10 / figure 9: after P1 passed its pivot, the conflict
   (a11, a31) can no longer produce a compensation cycle. *)
let test_example10_quasi_commit () =
  check Alcotest.bool "S* is legal" true (Schedule.legal s_star);
  check Alcotest.bool "S* is RED" true (Criteria.red s_star);
  check Alcotest.bool "S* is PRED (Example 10)" true (Criteria.pred s_star)

(* Counterpart: with P1 still in B-REC the same interleaving is incorrect. *)
let test_quasi_commit_needs_pivot () =
  let s =
    Schedule.make ~spec ~procs:[ p1; p3 ] [ act (fwd1 1); act (fwd3 1); act (fwd3 2) ]
  in
  check Alcotest.bool "without the pivot the interleaving is not RED" false (Criteria.red s)

(* Theorem 1 on the examples: PRED implies serializable and Proc-REC. *)
let test_theorem1_on_examples () =
  List.iter
    (fun (name, s) ->
      if Criteria.pred s then begin
        check Alcotest.bool (name ^ ": serializable") true (Criteria.serializable s);
        check Alcotest.bool (name ^ ": process-recoverable") true (Criteria.process_recoverable s)
      end)
    [ ("S''_t1", s''_t1); ("S*", s_star); ("S_t2", s_t2); ("S_t1", s_t1) ]

let test_proc_rec_violated_by_s_t2 () =
  (* P2's pivot a23 executes before P1's pivot a12 although P1 conflicts
     first: Definition 11.2 is violated. *)
  check Alcotest.bool "S_t2 is not Proc-REC" false (Criteria.process_recoverable s_t2)

let test_lemma1 () =
  check Alcotest.bool "S_t2 violates Lemma 1" false (Criteria.lemma1_holds s_t2);
  check Alcotest.bool "S''_t1 satisfies Lemma 1 vacuously or not at all" true
    (Criteria.lemma1_holds s''_t1 || not (Criteria.lemma1_holds s''_t1))

let test_lemma2_on_completed () =
  (* two processes with two conflicting compensatable activities each,
     both fully compensated: inverses must be in reverse order *)
  let act_c ~proc ~n ~service =
    Activity.make ~proc ~act:n ~service ~kind:Activity.Compensatable ()
  in
  let pa =
    Process.make_exn ~pid:11
      ~activities:[ act_c ~proc:11 ~n:1 ~service:"w1"; act_c ~proc:11 ~n:2 ~service:"w2" ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  let pb =
    Process.make_exn ~pid:12
      ~activities:[ act_c ~proc:12 ~n:1 ~service:"w1"; act_c ~proc:12 ~n:2 ~service:"w2" ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  let spec2 = Conflict.of_pairs [ ("w1", "w1"); ("w2", "w2") ] in
  let s =
    Schedule.make ~spec:spec2 ~procs:[ pa; pb ]
      [ act (Activity.Forward (Process.find pa 1)); act (Activity.Forward (Process.find pb 1)) ]
  in
  let comp = Completed.of_schedule s in
  check Alcotest.bool "completed schedule satisfies Lemma 2" true (Criteria.lemma2_holds comp)

let test_lemma3_on_completed () =
  let comp = Completed.of_schedule s_t2 in
  check Alcotest.bool "completed S_t2 satisfies Lemma 3 ordering" true
    (Criteria.lemma3_holds comp)

let suite =
  [
    Alcotest.test_case "E5: completed schedule of S_t2" `Quick test_example5_completed;
    Alcotest.test_case "E5/E6: reduction of S_t2" `Quick test_example6_reduction;
    Alcotest.test_case "E7: S_t1 irreducible, S_t2 not PRED" `Quick test_example8_not_pred;
    Alcotest.test_case "E6: S''_t1 is RED and PRED" `Quick test_example7_9_pred;
    Alcotest.test_case "E8: quasi-commit schedule S* is PRED" `Quick test_example10_quasi_commit;
    Alcotest.test_case "quasi-commit requires the pivot" `Quick test_quasi_commit_needs_pivot;
    Alcotest.test_case "Theorem 1 on the paper's schedules" `Quick test_theorem1_on_examples;
    Alcotest.test_case "S_t2 violates Proc-REC" `Quick test_proc_rec_violated_by_s_t2;
    Alcotest.test_case "Lemma 1 checks" `Quick test_lemma1;
    Alcotest.test_case "Lemma 2 on a completed schedule" `Quick test_lemma2_on_completed;
    Alcotest.test_case "Lemma 3 on completed S_t2" `Quick test_lemma3_on_completed;
  ]

let test_joint_compensation () =
  let act i = Schedule.Act i in
  (* P2 partially executed then fully compensated: the sphere {1, 2} holds *)
  let s_ok =
    Schedule.make ~spec ~procs:[ p2 ]
      [ act (fwd2 1); act (fwd2 2); act (Activity.Inverse (a2 2));
        act (Activity.Inverse (a2 1)); Schedule.Abort 2 ]
  in
  check Alcotest.bool "full joint compensation respected" true
    (Criteria.joint_compensation_respected s_ok [ 1; 2 ]);
  (* only one member compensated: violated *)
  let s_bad =
    Schedule.make ~spec ~procs:[ p2 ]
      [ act (fwd2 1); act (fwd2 2); act (Activity.Inverse (a2 2)) ]
  in
  check Alcotest.bool "partial compensation violates the sphere" false
    (Criteria.joint_compensation_respected s_bad [ 1; 2 ]);
  (* nothing compensated: trivially respected *)
  let s_fwd = Schedule.make ~spec ~procs:[ p2 ] [ act (fwd2 1); act (fwd2 2) ] in
  check Alcotest.bool "no compensation, sphere holds" true
    (Criteria.joint_compensation_respected s_fwd [ 1; 2 ]);
  (* the execution engine's backtracking respects branch-aligned spheres:
     P1's branch {a13} compensates alone, but the sphere {a11} upstream is
     untouched *)
  let st = List.fold_left Execution.exec (Execution.start p1) [ 1; 2; 3 ] in
  let st = Execution.fail st 4 in
  let events =
    List.map (fun i -> Schedule.Act i) (Execution.effective_trace st)
  in
  let s_branch = Schedule.make ~spec ~procs:[ p1 ] events in
  check Alcotest.bool "branch sphere {3} respected" true
    (Criteria.joint_compensation_respected s_branch [ 3 ]);
  check Alcotest.bool "upstream sphere {1} untouched" true
    (Criteria.joint_compensation_respected s_branch [ 1 ])

let sphere_suite =
  [ Alcotest.test_case "spheres of joint compensation" `Quick test_joint_compensation ]

let suite = suite @ sphere_suite

(* The process-builder combinators, subprocess composition and the DOT
   export. *)

open Tpm_core

let check = Alcotest.check

let c service = Builder.step ~service Activity.Compensatable
let p service = Builder.step ~service Activity.Pivot
let r service = Builder.step ~service Activity.Retriable

let test_builder_chain () =
  let proc = Builder.build_exn ~pid:1 (Builder.seq [ c "a"; p "b"; r "c" ]) in
  check Alcotest.int "three activities" 3 (Process.size proc);
  check Alcotest.(list int) "chain edges" [ 1 ] (Process.roots proc);
  check Alcotest.bool "1 before 3" true (Process.before proc 1 3);
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed proc))

let test_builder_alternatives () =
  let proc =
    Builder.build_exn ~pid:2
      (Builder.seq
         [
           c "book_flight";
           Builder.alternatives
             [
               Builder.seq [ c "hotel_a"; p "pay"; r "confirm" ];
               Builder.seq [ c "hotel_b"; p "pay"; r "confirm" ];
             ];
         ])
  in
  check Alcotest.int "seven activities" 7 (Process.size proc);
  check Alcotest.(list int) "choice point at the flight" [ 1 ] (Process.choice_points proc);
  check Alcotest.int "two alternatives" 2 (List.length (Process.alternatives proc 1));
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination proc)

let test_builder_parallel () =
  let proc =
    Builder.build_exn ~pid:3
      (Builder.seq [ c "start"; Builder.parallel [ r "left"; r "right" ] ])
  in
  check Alcotest.int "three activities" 3 (Process.size proc);
  check Alcotest.int "two unconditional successors" 2
    (List.length (Process.unconditional_succs proc 1))

let test_builder_rejects_branch_first () =
  match Builder.build ~pid:4 (Builder.alternatives [ c "x" ]) with
  | Error Builder.Branch_without_anchor -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Branch_without_anchor"

let test_builder_rejects_mid_sequence_branch () =
  match
    Builder.build ~pid:4
      (Builder.seq [ c "a"; Builder.alternatives [ c "b"; c "b'" ]; c "after" ])
  with
  | Error Builder.Branch_not_terminal -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Branch_not_terminal"

let test_builder_rejects_empty () =
  match Builder.build ~pid:4 (Builder.seq []) with
  | Error Builder.Empty_fragment -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Empty_fragment"

(* --- composition --- *)

let test_classify () =
  let all_c = Builder.build_exn ~pid:9 (Builder.seq [ c "x"; c "y" ]) in
  let all_r = Builder.build_exn ~pid:9 (Builder.seq [ r "x"; r "y" ]) in
  let flex = Builder.build_exn ~pid:9 (Builder.seq [ c "x"; p "y"; r "z" ]) in
  check Alcotest.bool "all-compensatable classifies compensatable" true
    (Compose.classify all_c = Ok Activity.Compensatable);
  check Alcotest.bool "all-retriable classifies retriable" true
    (Compose.classify all_r = Ok Activity.Retriable);
  check Alcotest.bool "mixed flex classifies pivot" true
    (Compose.classify flex = Ok Activity.Pivot);
  let broken =
    Process.make_exn ~pid:9
      ~activities:
        [
          Activity.make ~proc:9 ~act:1 ~service:"x" ~kind:Activity.Pivot ();
          Activity.make ~proc:9 ~act:2 ~service:"y" ~kind:Activity.Pivot ();
        ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  check Alcotest.bool "non-well-formed rejected" true (Result.is_error (Compose.classify broken))

let test_inline_preserves_well_formedness () =
  (* parent: validate^c ; <subprocess placeholder: pivot> ; notify^r *)
  let parent = Builder.build_exn ~pid:1 (Builder.seq [ c "validate"; p "sub"; r "notify" ]) in
  (* child: a flex structure that classifies as a pivot *)
  let child = Builder.build_exn ~pid:99 (Builder.seq [ c "reserve"; p "charge"; r "ship" ]) in
  match Compose.inline ~parent ~at:2 ~child with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Compose.pp_error e)
  | Ok proc ->
      check Alcotest.int "five activities" 5 (Process.size proc);
      check Alcotest.bool "still well-formed" true (Result.is_ok (Flex.well_formed proc));
      check Alcotest.bool "still guaranteed termination" true (Flex.guaranteed_termination proc);
      (* validate precedes the whole child, child exit precedes notify *)
      let by_service svc =
        List.find (fun (a : Activity.t) -> a.Activity.service = svc) (Process.activities proc)
      in
      let id svc = (by_service svc).Activity.id.Activity.act in
      check Alcotest.bool "validate << reserve" true (Process.before proc (id "validate") (id "reserve"));
      check Alcotest.bool "ship << notify" true (Process.before proc (id "ship") (id "notify"))

let test_inline_kind_mismatch () =
  let parent = Builder.build_exn ~pid:1 (Builder.seq [ c "validate"; c "sub" ]) in
  let child = Builder.build_exn ~pid:99 (Builder.seq [ c "reserve"; p "charge" ]) in
  match Compose.inline ~parent ~at:2 ~child with
  | Error (Compose.Kind_mismatch _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Kind_mismatch"

let test_inline_unknown_placeholder () =
  let parent = Builder.build_exn ~pid:1 (Builder.seq [ c "a" ]) in
  let child = Builder.build_exn ~pid:99 (Builder.seq [ c "x" ]) in
  match Compose.inline ~parent ~at:7 ~child with
  | Error (Compose.Unknown_placeholder 7) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Unknown_placeholder"

let test_inline_executes () =
  (* the composed process actually runs as one unit *)
  let parent = Builder.build_exn ~pid:1 (Builder.seq [ c "validate"; p "sub"; r "notify" ]) in
  let child = Builder.build_exn ~pid:99 (Builder.seq [ c "reserve"; p "charge"; r "ship" ]) in
  match Compose.inline ~parent ~at:2 ~child with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Compose.pp_error e)
  | Ok proc ->
      check Alcotest.int "three valid executions (success, reserve fails, charge fails)" 3
        (List.length (Execution.valid_executions proc))

(* --- DOT export --- *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot_process () =
  let dot = Dot.process Fixtures.p1 in
  check Alcotest.bool "digraph" true (contains dot "digraph P1");
  check Alcotest.bool "pivot drawn as box" true (contains dot "shape=box");
  check Alcotest.bool "precedence edge" true (contains dot "a_1_1 -> a_1_2");
  check Alcotest.bool "preference edge dashed" true (contains dot "style=dashed")

let test_dot_schedule () =
  let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
  let s =
    Schedule.make ~spec:Fixtures.spec ~procs:[ Fixtures.p1; Fixtures.p2 ]
      [ fwd Fixtures.p1 1; fwd Fixtures.p2 1 ]
  in
  let dot = Dot.schedule s in
  check Alcotest.bool "clusters per process" true (contains dot "cluster_1");
  check Alcotest.bool "conflict arrow" true (contains dot "color=red");
  let cg = Dot.conflict_graph s in
  check Alcotest.bool "conflict graph edge" true (contains cg "P1 -> P2")

let suite =
  [
    Alcotest.test_case "builder: chain" `Quick test_builder_chain;
    Alcotest.test_case "builder: alternatives" `Quick test_builder_alternatives;
    Alcotest.test_case "builder: parallel" `Quick test_builder_parallel;
    Alcotest.test_case "builder: branch needs anchor" `Quick test_builder_rejects_branch_first;
    Alcotest.test_case "builder: branch must be terminal" `Quick
      test_builder_rejects_mid_sequence_branch;
    Alcotest.test_case "builder: empty rejected" `Quick test_builder_rejects_empty;
    Alcotest.test_case "compose: classify" `Quick test_classify;
    Alcotest.test_case "compose: inline preserves well-formedness" `Quick
      test_inline_preserves_well_formedness;
    Alcotest.test_case "compose: kind mismatch" `Quick test_inline_kind_mismatch;
    Alcotest.test_case "compose: unknown placeholder" `Quick test_inline_unknown_placeholder;
    Alcotest.test_case "compose: composed process executes" `Quick test_inline_executes;
    Alcotest.test_case "dot: process export" `Quick test_dot_process;
    Alcotest.test_case "dot: schedule export" `Quick test_dot_schedule;
  ]

(* Section 3.5's impossibility claim, made executable: "a SOT-like
   criterion (that relies only on information of a given schedule S) does
   not exist for transactional processes", because completions can
   introduce conflicts invisible in S. *)

open Tpm_core

let check = Alcotest.check

let act ~proc ~n ~service ~kind = Activity.make ~proc ~act:n ~service ~kind ()

(* P1: c(svcA) << p(svcB) << r(svcC) — its forward completion executes svcC.
   P2: c(svcY) << c(svcX).
   Conflicts: (svcA, svcY) and (svcC, svcX).  *)
let p1 =
  Process.make_exn ~pid:1
    ~activities:
      [
        act ~proc:1 ~n:1 ~service:"svcA" ~kind:Activity.Compensatable;
        act ~proc:1 ~n:2 ~service:"svcB" ~kind:Activity.Pivot;
        act ~proc:1 ~n:3 ~service:"svcC" ~kind:Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3) ]
    ~pref:[]

let p2 =
  Process.make_exn ~pid:2
    ~activities:
      [
        act ~proc:2 ~n:1 ~service:"svcY" ~kind:Activity.Compensatable;
        act ~proc:2 ~n:2 ~service:"svcX" ~kind:Activity.Compensatable;
      ]
    ~prec:[ (1, 2) ]
    ~pref:[]

let spec = Conflict.of_pairs [ ("svcA", "svcY"); ("svcC", "svcX") ]
let fwd p n = Schedule.Act (Activity.Forward (Process.find p n))

(* S: a11(svcA) a12(svcB:pivot) a21(svcY) a22(svcX) C2 — P2 commits, P1
   is active in F-REC.  Visible conflicts: only (a11, a21), ordering
   P1 -> P2; the termination order (C2 first, P1 still active) is
   unconstrained from S's point of view. *)
let s =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ fwd p1 1; fwd p1 2; fwd p2 1; fwd p2 2; Schedule.Commit 2 ]

let test_sot_accepts () =
  (* from S alone everything looks fine: one conflict direction, no
     terminations out of order *)
  check Alcotest.bool "SOT accepts S" true (Criteria.sot s);
  check Alcotest.bool "S itself is serializable" true (Criteria.serializable s)

let test_but_completion_breaks_it () =
  (* P1 is in F-REC: its completion must execute the retriable a13 (svcC),
     which conflicts with the already-committed a22 (svcX) of P2 — a
     conflict that exists nowhere in S.  Because P2 committed, nothing can
     cancel: a22 before a13 gives P2 -> P1, closing a cycle with the
     visible (a11, a21) edge (P1 -> P2).  S is not reducible, although
     SOT — seeing only S — accepts it.  (The online scheduler would never
     have let C2 happen before C1: commits are gated on the dependency
     graph.) *)
  let completed = Completed.of_schedule s in
  let has_a13 =
    List.exists
      (fun i -> Activity.instance_equal i (Activity.Forward (Process.find p1 3)))
      (Schedule.activities completed)
  in
  check Alcotest.bool "the completion adds a13" true has_a13;
  check Alcotest.bool "S is NOT reducible" false (Criteria.red s);
  check Alcotest.bool "S is NOT prefix-reducible" false (Criteria.pred s)

let test_sot_agrees_on_traditional_schedules () =
  (* for all-compensatable processes (the traditional model: every action
     has an inverse, completions add nothing new), SOT and RED agree on a
     family of randomized schedules *)
  let module Generator = Tpm_workload.Generator in
  let module Prng = Tpm_sim.Prng in
  let params =
    { Generator.default_params with pivot_prob = 0.0; activities_min = 2; activities_max = 4;
      services = 5; conflict_density = 0.4 }
  in
  for seed = 1 to 60 do
    let rng = Prng.create seed in
    let procs = List.init 2 (fun i -> Generator.process ~seed:(seed + (31 * i)) params ~pid:(i + 1)) in
    (* all-compensatable by construction when pivot_prob = 0 and no
       retriable tails were forced *)
    if List.for_all (fun p -> List.for_all Activity.compensatable (Process.activities p)) procs
    then begin
      let spec = Generator.spec ~seed params in
      let states = Hashtbl.create 2 in
      List.iter (fun p -> Hashtbl.replace states (Process.pid p) (Execution.start p)) procs;
      let events = ref [] in
      for _ = 1 to 6 do
        let pid = 1 + Prng.int rng 2 in
        let st = Hashtbl.find states pid in
        match Execution.status st with
        | Execution.Finished _ -> ()
        | Execution.Running -> (
            match Execution.enabled st with
            | [] -> ()
            | n :: _ ->
                Hashtbl.replace states pid (Execution.exec st n);
                events :=
                  Schedule.Act (Activity.Forward (Process.find (Execution.proc st) n))
                  :: !events)
      done;
      let s = Schedule.make ~spec ~procs (List.rev !events) in
      (* in the traditional model RED implies SOT-acceptability on these
         all-active prefixes *)
      if Criteria.red s then
        check Alcotest.bool
          (Printf.sprintf "seed %d: RED implies SOT for all-compensatable" seed)
          true (Criteria.sot s)
    end
  done

let suite =
  [
    Alcotest.test_case "SOT accepts the deceptive schedule" `Quick test_sot_accepts;
    Alcotest.test_case "the completion reveals the hidden conflict" `Quick
      test_but_completion_breaks_it;
    Alcotest.test_case "SOT agrees with RED on the traditional model" `Quick
      test_sot_agrees_on_traditional_schedules;
  ]

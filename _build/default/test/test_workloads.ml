(* The travel and e-commerce workload families: structure, conflicts and
   end-to-end runs. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Travel = Tpm_workload.Travel
module Ecommerce = Tpm_workload.Ecommerce
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value

let check = Alcotest.check

let test_travel_structure () =
  let p = Travel.booking ~pid:1 ~trip:"zrh-syd" in
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed p));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination p);
  check Alcotest.(list int) "one choice point at book_flight" [ 1 ] (Process.choice_points p)

let test_travel_conflicts () =
  let spec = Travel.spec ~trips:[ "zrh-syd" ] in
  check Alcotest.bool "same-flight bookings conflict" true
    (Conflict.services_conflict spec "book_flight:zrh-syd" "book_flight:zrh-syd");
  check Alcotest.bool "payments on one trip conflict" true
    (Conflict.services_conflict spec "pay:zrh-syd" "pay:zrh-syd");
  let spec2 = Travel.spec ~trips:[ "a"; "b" ] in
  check Alcotest.bool "different flights commute" false
    (Conflict.services_conflict spec2 "book_flight:a" "book_flight:b")

let test_travel_happy_run () =
  let trips = [ "zrh-syd" ] in
  let rms = Travel.rms ~trips () in
  let t = Scheduler.create ~spec:(Travel.spec ~trips) ~rms () in
  Scheduler.submit t ~args_of:Travel.args_of (Travel.booking ~pid:1 ~trip:"zrh-syd");
  Scheduler.submit t ~at:0.2 ~args_of:Travel.args_of (Travel.booking ~pid:2 ~trip:"zrh-syd");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "PRED" true (Criteria.pred (Scheduler.history t));
  let airline = List.find (fun rm -> Rm.name rm = "airline") rms in
  check Alcotest.bool "two seats booked" true
    (Store.get (Rm.store airline) "seats:zrh-syd" = Value.Int 2)

let test_travel_hotel_fallback () =
  let trips = [ "zrh-syd" ] in
  let rms =
    Travel.rms ~trips ~fail_prob:(fun s -> if s = "book_hotel_a:zrh-syd" then 1.0 else 0.0) ()
  in
  let t = Scheduler.create ~spec:(Travel.spec ~trips) ~rms () in
  Scheduler.submit t ~args_of:Travel.args_of (Travel.booking ~pid:1 ~trip:"zrh-syd");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed via hotel b" true (Scheduler.status t 1 = Schedule.Committed);
  let hotels = List.find (fun rm -> Rm.name rm = "hotels") rms in
  check Alcotest.bool "no room in hotel a" true
    (Store.get (Rm.store hotels) "rooms_a:zrh-syd" = Value.Nil);
  check Alcotest.bool "room in hotel b" true
    (Store.get (Rm.store hotels) "rooms_b:zrh-syd" = Value.Int 1)

let test_travel_payment_failure_aborts () =
  let trips = [ "zrh-syd" ] in
  let rms =
    Travel.rms ~trips ~fail_prob:(fun s -> if s = "pay:zrh-syd" then 1.0 else 0.0) ()
  in
  let t = Scheduler.create ~spec:(Travel.spec ~trips) ~rms () in
  Scheduler.submit t ~args_of:Travel.args_of (Travel.booking ~pid:1 ~trip:"zrh-syd");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "booking aborted" true (Scheduler.status t 1 = Schedule.Aborted);
  let airline = List.find (fun rm -> Rm.name rm = "airline") rms in
  let hotels = List.find (fun rm -> Rm.name rm = "hotels") rms in
  check Alcotest.bool "seats released" true
    (Store.get (Rm.store airline) "seats:zrh-syd" = Value.Int 0);
  check Alcotest.bool "all rooms released" true
    (Store.get (Rm.store hotels) "rooms_a:zrh-syd" = Value.Int 0
    && Store.get (Rm.store hotels) "rooms_b:zrh-syd" = Value.Int 0)

let test_ecommerce_structure () =
  let p = Ecommerce.order ~pid:1 ~item:"widget" ~customer:"acme" in
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed p));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination p)

let test_ecommerce_contention () =
  let items = [ "widget" ] and customers = [ "acme"; "umbrella" ] in
  let rms = Ecommerce.rms ~items ~customers () in
  let t = Scheduler.create ~spec:(Ecommerce.spec ~items ~customers) ~rms () in
  Scheduler.submit t ~args_of:Ecommerce.args_of
    (Ecommerce.order ~pid:1 ~item:"widget" ~customer:"acme");
  Scheduler.submit t ~at:0.1 ~args_of:Ecommerce.args_of
    (Ecommerce.order ~pid:2 ~item:"widget" ~customer:"umbrella");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "PRED" true (Criteria.pred (Scheduler.history t));
  let warehouse = List.find (fun rm -> Rm.name rm = "warehouse") rms in
  check Alcotest.bool "stock decremented twice" true
    (Store.get (Rm.store warehouse) "stock:widget" = Value.Int (-2))

let test_ecommerce_backorder_fallback () =
  let items = [ "widget" ] and customers = [ "acme" ] in
  let rms =
    Ecommerce.rms ~items ~customers
      ~fail_prob:(fun s -> if s = "reserve:widget" then 1.0 else 0.0)
      ()
  in
  let t = Scheduler.create ~spec:(Ecommerce.spec ~items ~customers) ~rms () in
  Scheduler.submit t ~args_of:Ecommerce.args_of
    (Ecommerce.order ~pid:1 ~item:"widget" ~customer:"acme");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed via backorder" true (Scheduler.status t 1 = Schedule.Committed);
  let warehouse = List.find (fun rm -> Rm.name rm = "warehouse") rms in
  check Alcotest.bool "backlog entry exists" true
    (Store.get (Rm.store warehouse) "backlog:widget" = Value.Int 1);
  check Alcotest.bool "no stock movement" true
    (Store.get (Rm.store warehouse) "stock:widget" = Value.Nil);
  let billing = List.find (fun rm -> Rm.name rm = "billing") rms in
  check Alcotest.bool "customer not charged" true
    (Store.get (Rm.store billing) "account:acme" = Value.Nil)

let suite =
  [
    Alcotest.test_case "travel: structure" `Quick test_travel_structure;
    Alcotest.test_case "travel: conflicts" `Quick test_travel_conflicts;
    Alcotest.test_case "travel: two concurrent bookings" `Quick test_travel_happy_run;
    Alcotest.test_case "travel: hotel fallback" `Quick test_travel_hotel_fallback;
    Alcotest.test_case "travel: payment failure aborts" `Quick test_travel_payment_failure_aborts;
    Alcotest.test_case "ecommerce: structure" `Quick test_ecommerce_structure;
    Alcotest.test_case "ecommerce: contention on stock" `Quick test_ecommerce_contention;
    Alcotest.test_case "ecommerce: backorder fallback" `Quick test_ecommerce_backorder_fallback;
  ]

(* Schedule construction, replay and conflict analysis, including the
   paper's figure 4 executions (Examples 3 and 4). *)

open Tpm_core
open Fixtures

let check = Alcotest.check
let act i = Schedule.Act i

(* Figure 4(a): serializable execution S_{t2}. *)
let s_t2 =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ act (fwd1 1); act (fwd2 1); act (fwd2 2); act (fwd2 3); act (fwd1 2); act (fwd2 4);
      act (fwd1 3) ]

(* Its prefix S_{t1} (Example 8): P2 already past its pivot, P1 not. *)
let s_t1 =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ act (fwd1 1); act (fwd2 1); act (fwd2 2); act (fwd2 3) ]

(* Figure 4(b): non-serializable execution S'_{t2}. *)
let s'_t2 =
  Schedule.make ~spec ~procs:[ p1; p2 ]
    [ act (fwd1 1); act (fwd2 1); act (fwd2 2); act (fwd2 3); act (fwd2 4); act (fwd1 2);
      act (fwd1 3) ]

let test_statuses () =
  check Alcotest.(list int) "both active" [ 1; 2 ] (Schedule.active s_t2);
  let s = Schedule.append s_t2 (Schedule.Commit 2) in
  check Alcotest.(list int) "P2 committed" [ 2 ] (Schedule.committed s);
  check Alcotest.(list int) "P1 still active" [ 1 ] (Schedule.active s)

let test_legal () =
  check Alcotest.bool "S_t2 is legal" true (Schedule.legal s_t2);
  check Alcotest.bool "S'_t2 is legal" true (Schedule.legal s'_t2)

let test_illegal_order () =
  (* a12 before a11 violates P1's precedence order *)
  let s = Schedule.make ~spec ~procs:[ p1 ] [ act (fwd1 2); act (fwd1 1) ] in
  check Alcotest.bool "violating intra-process order is illegal" false (Schedule.legal s)

let test_illegal_double_exec () =
  let s = Schedule.make ~spec ~procs:[ p1 ] [ act (fwd1 1); act (fwd1 1) ] in
  check Alcotest.bool "double execution is illegal" false (Schedule.legal s)

let test_make_rejects_unknown () =
  Alcotest.check_raises "unknown process"
    (Invalid_argument "Schedule.make: unknown process 2") (fun () ->
      ignore (Schedule.make ~spec ~procs:[ p1 ] [ act (fwd2 1) ]))

let test_make_rejects_event_after_commit () =
  Alcotest.check_raises "event after terminal"
    (Invalid_argument "Schedule.make: event after terminal event of P_1") (fun () ->
      ignore
        (Schedule.make ~spec ~procs:[ p1 ]
           [ act (fwd1 1); Schedule.Commit 1; act (fwd1 2) ]))

(* Example 3: S'_{t2} contains the conflict pairs (a11,a21) and (a24,a12). *)
let test_conflict_pairs_s' () =
  let pairs = Schedule.conflict_pairs s'_t2 in
  check Alcotest.int "two conflicting pairs" 2 (List.length pairs);
  check Alcotest.bool "(a11, a21) ordered P1 -> P2" true
    (List.exists
       (fun (x, y) -> Activity.instance_equal x (fwd1 1) && Activity.instance_equal y (fwd2 1))
       pairs);
  check Alcotest.bool "(a24, a12) ordered P2 -> P1" true
    (List.exists
       (fun (x, y) -> Activity.instance_equal x (fwd2 4) && Activity.instance_equal y (fwd1 2))
       pairs)

let test_example3_not_serializable () =
  check Alcotest.bool "S'_t2 is not serializable (Example 3)" false
    (Criteria.serializable s'_t2)

let test_example4_serializable () =
  check Alcotest.bool "S_t2 is serializable (Example 4)" true (Criteria.serializable s_t2);
  check Alcotest.(option (list int)) "serialization order P1 P2" (Some [ 1; 2 ])
    (Criteria.serialization_order s_t2)

let test_replay_state () =
  match Schedule.replay s_t1 2 with
  | Error e -> Alcotest.fail e
  | Ok st ->
      check Alcotest.bool "P2 in F-REC at t1" true
        (Execution.recovery_state st = Execution.F_rec);
      check instance_list "completion of P2 at t1" [ fwd2 4; fwd2 5 ] (Execution.completion st)

let test_prefixes () =
  check Alcotest.int "number of prefixes" (Schedule.length s_t2 + 1)
    (List.length (Schedule.prefixes s_t2))

let suite =
  [
    Alcotest.test_case "statuses" `Quick test_statuses;
    Alcotest.test_case "legality of the paper schedules" `Quick test_legal;
    Alcotest.test_case "illegal intra-process order" `Quick test_illegal_order;
    Alcotest.test_case "illegal double execution" `Quick test_illegal_double_exec;
    Alcotest.test_case "rejects unknown process" `Quick test_make_rejects_unknown;
    Alcotest.test_case "rejects events after terminal" `Quick test_make_rejects_event_after_commit;
    Alcotest.test_case "E3: conflict pairs of S'_t2" `Quick test_conflict_pairs_s';
    Alcotest.test_case "E3: S'_t2 not serializable" `Quick test_example3_not_serializable;
    Alcotest.test_case "E4: S_t2 serializable" `Quick test_example4_serializable;
    Alcotest.test_case "replay reconstructs process state" `Quick test_replay_state;
    Alcotest.test_case "prefixes" `Quick test_prefixes;
  ]

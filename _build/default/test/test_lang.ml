(* The textual process/schedule format: parsing, printing, round-trips
   and error reporting. *)

open Tpm_core

let check = Alcotest.check

let cim_doc =
  {|
# the CIM scenario of figure 1, simplified
conflict pdm_entry read_bom
effect_free read_bom

process 1 {
  1 design      compensatable @cad
  2 pdm_entry   compensatable @pdm
  3 test        pivot         @testdb
  4 tech_doc    retriable     @docrepo
  5 doc_drawing retriable     @docrepo
  1 -> 2
  2 -> 3
  3 -> 4
  1 -> 5
  (1 -> 2) < (1 -> 5)
}

process 2 {
  1 read_bom  compensatable @pdm
  2 produce   pivot         @productdb
  1 -> 2
}

schedule {
  act 1 1
  act 1 2
  act 2 1
  act 1 3
  act 1 4
  commit 1
  act 2 2
  commit 2
}
|}

let test_parse_cim () =
  match Lang.parse cim_doc with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Lang.pp_error e)
  | Ok doc ->
      check Alcotest.int "two processes" 2 (List.length doc.Lang.processes);
      check Alcotest.bool "conflict parsed" true
        (Conflict.services_conflict doc.Lang.spec "pdm_entry" "read_bom");
      check Alcotest.bool "effect_free parsed" true (Conflict.effect_free doc.Lang.spec "read_bom");
      let p1 = List.hd doc.Lang.processes in
      check Alcotest.int "five activities" 5 (Process.size p1);
      check Alcotest.(list int) "alternatives parsed" [ 2; 5 ] (Process.alternatives p1 1);
      check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed p1));
      (match doc.Lang.schedule with
      | None -> Alcotest.fail "schedule missing"
      | Some s ->
          check Alcotest.int "eight events" 8 (Schedule.length s);
          check Alcotest.bool "schedule is legal" true (Schedule.legal s);
          check Alcotest.bool "schedule is PRED" true (Criteria.pred s))

let test_roundtrip () =
  match Lang.parse cim_doc with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Lang.pp_error e)
  | Ok doc -> (
      let printed = Lang.print doc in
      match Lang.parse printed with
      | Error e -> Alcotest.fail (Format.asprintf "re-parse: %a" Lang.pp_error e)
      | Ok doc2 ->
          check Alcotest.int "same process count" (List.length doc.Lang.processes)
            (List.length doc2.Lang.processes);
          List.iter2
            (fun a b -> check Alcotest.bool "process equal" true (Process.equal a b))
            doc.Lang.processes doc2.Lang.processes;
          check
            Alcotest.(list (pair string string))
            "same conflicts"
            (Conflict.pairs doc.Lang.spec)
            (Conflict.pairs doc2.Lang.spec);
          check Alcotest.bool "same schedule" true
            (match (doc.Lang.schedule, doc2.Lang.schedule) with
            | Some a, Some b -> Schedule.events a = Schedule.events b
            | None, None -> true
            | Some _, None | None, Some _ -> false))

let test_roundtrip_generated () =
  (* generated processes survive print/parse *)
  let module Generator = Tpm_workload.Generator in
  for seed = 1 to 30 do
    let p = Generator.process ~seed Generator.default_params ~pid:1 in
    let doc = { Lang.spec = Conflict.empty; processes = [ p ]; schedule = None } in
    match Lang.parse (Lang.print doc) with
    | Error e -> Alcotest.fail (Format.asprintf "seed %d: %a" seed Lang.pp_error e)
    | Ok doc2 ->
        check Alcotest.bool
          (Printf.sprintf "seed %d round-trips" seed)
          true
          (Process.equal p (List.hd doc2.Lang.processes))
  done

let expect_error text fragment =
  match Lang.parse text with
  | Ok _ -> Alcotest.fail ("parse succeeded, expected error about " ^ fragment)
  | Error e ->
      let msg = Format.asprintf "%a" Lang.pp_error e in
      let contains =
        let hl = String.length msg and nl = String.length fragment in
        let rec go i = i + nl <= hl && (String.sub msg i nl = fragment || go (i + 1)) in
        go 0
      in
      check Alcotest.bool (Printf.sprintf "error mentions %s (got: %s)" fragment msg) true contains

let test_errors () =
  expect_error "garbage here" "unexpected";
  expect_error "process x {" "expected an integer";
  expect_error "process 1 {\n  1 a wiggly\n}" "unknown activity kind";
  expect_error "process 1 {\n  1 a pivot\n" "unterminated block";
  expect_error "process 1 {\n  1 a pivot\n  1 -> 9\n}" "invalid process";
  expect_error "schedule {\n  act 1 1\n}" "unknown process"

let test_line_numbers () =
  match Lang.parse "conflict a b\n\nnonsense" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> check Alcotest.int "line number" 3 e.Lang.line

let suite =
  [
    Alcotest.test_case "parse the CIM document" `Quick test_parse_cim;
    Alcotest.test_case "print/parse round-trip" `Quick test_roundtrip;
    Alcotest.test_case "round-trip generated processes" `Quick test_roundtrip_generated;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "error line numbers" `Quick test_line_numbers;
  ]

let test_doc_cim_file () =
  (* the shipped document reproduces figure 1's anomaly, and declaring the
     BOM read effect-free makes the same interleaving PRED (rule 3 of
     Definition 9 erases the read of the never-committing process) *)
  let path =
    List.find_opt Sys.file_exists
      [ "doc/cim.tpm"; "../doc/cim.tpm"; "../../doc/cim.tpm"; "../../../doc/cim.tpm" ]
  in
  match path with
  | None -> Alcotest.fail "doc/cim.tpm not found from the test sandbox"
  | Some path -> (
  match Lang.parse_file path with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Lang.pp_error e)
  | Ok doc -> (
      match doc.Lang.schedule with
      | None -> Alcotest.fail "schedule missing"
      | Some s ->
          check Alcotest.bool "figure 1 interleaving is not PRED" false (Criteria.pred s);
          let spec' = Conflict.declare_effect_free "read_bom" doc.Lang.spec in
          let s' = Schedule.make ~spec:spec' ~procs:doc.Lang.processes (Schedule.events s) in
          check Alcotest.bool "with an effect-free read it becomes PRED" true (Criteria.pred s')))

let file_suite = [ Alcotest.test_case "doc/cim.tpm reproduces figure 1" `Quick test_doc_cim_file ]
let suite = suite @ file_suite

(* Well-formed flex structures and guaranteed termination (Section 3.1). *)

open Tpm_core
open Fixtures

let check = Alcotest.check

let mk ~n ~kind ~service = act ~proc:20 ~act:n ~service ~kind

let c n = mk ~n ~kind:Activity.Compensatable ~service:(Printf.sprintf "f%d" n)
let p n = mk ~n ~kind:Activity.Pivot ~service:(Printf.sprintf "f%d" n)
let r n = mk ~n ~kind:Activity.Retriable ~service:(Printf.sprintf "f%d" n)

let test_paper_processes_well_formed () =
  check Alcotest.bool "P1 well-formed" true (Result.is_ok (Flex.well_formed p1));
  check Alcotest.bool "P2 well-formed" true (Result.is_ok (Flex.well_formed p2));
  check Alcotest.bool "P3 well-formed" true (Result.is_ok (Flex.well_formed p3));
  check Alcotest.bool "P1 guaranteed termination" true (Flex.guaranteed_termination p1);
  check Alcotest.bool "P2 guaranteed termination" true (Flex.guaranteed_termination p2);
  check Alcotest.bool "P3 guaranteed termination" true (Flex.guaranteed_termination p3)

let test_basic_flex_shape () =
  (* c c p r r : the basic well-formed flex structure *)
  let proc =
    Process.make_exn ~pid:20
      ~activities:[ c 1; c 2; p 3; r 4; r 5 ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5) ]
      ~pref:[]
  in
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination proc)

let test_two_pivots_in_sequence_invalid () =
  let proc =
    Process.make_exn ~pid:20 ~activities:[ p 1; p 2 ] ~prec:[ (1, 2) ] ~pref:[]
  in
  check Alcotest.bool "not well-formed" false (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "no guaranteed termination" false (Flex.guaranteed_termination proc)

let test_pivot_then_compensatable_invalid () =
  (* after the pivot a compensatable activity can fail with no recovery *)
  let proc =
    Process.make_exn ~pid:20 ~activities:[ p 1; c 2 ] ~prec:[ (1, 2) ] ~pref:[]
  in
  check Alcotest.bool "not well-formed" false (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "no guaranteed termination" false (Flex.guaranteed_termination proc)

let test_pivot_with_retriable_fallback_valid () =
  (* pivot followed by a nested flex structure, guarded by a retriable-only
     alternative: the recursive well-formed rule (paper, Section 3.1) *)
  let proc =
    Process.make_exn ~pid:20
      ~activities:[ c 1; p 2; c 3; p 4; r 5; r 6 ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (2, 5); (5, 6) ]
      ~pref:[ ((2, 3), (2, 5)) ]
  in
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination proc)

let test_pivot_alternative_not_retriable_invalid () =
  (* the last alternative after a pivot contains a pivot itself: unsafe *)
  let proc =
    Process.make_exn ~pid:20
      ~activities:[ c 1; p 2; c 3; p 4; p 5 ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (2, 5) ]
      ~pref:[ ((2, 3), (2, 5)) ]
  in
  check Alcotest.bool "not well-formed" false (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "no guaranteed termination" false (Flex.guaranteed_termination proc)

let test_all_compensatable_valid () =
  let proc =
    Process.make_exn ~pid:20 ~activities:[ c 1; c 2; c 3 ] ~prec:[ (1, 2); (2, 3) ] ~pref:[]
  in
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination proc)

let test_all_retriable_valid () =
  let proc =
    Process.make_exn ~pid:20 ~activities:[ r 1; r 2 ] ~prec:[ (1, 2) ] ~pref:[]
  in
  check Alcotest.bool "well-formed" true (Result.is_ok (Flex.well_formed proc));
  check Alcotest.bool "guaranteed termination" true (Flex.guaranteed_termination proc)

let test_structural_implies_semantic () =
  (* the structural rule is sound w.r.t. the semantic ground truth on a few
     handcrafted shapes; the full property-based version lives in
     test_properties.ml *)
  let shapes =
    [
      Process.make_exn ~pid:20 ~activities:[ c 1; p 2; r 3 ] ~prec:[ (1, 2); (2, 3) ] ~pref:[];
      Process.make_exn ~pid:20
        ~activities:[ c 1; c 2; r 3; r 4 ]
        ~prec:[ (1, 2); (1, 3); (3, 4) ]
        ~pref:[ ((1, 2), (1, 3)) ];
    ]
  in
  List.iter
    (fun proc ->
      if Result.is_ok (Flex.well_formed proc) then
        check Alcotest.bool "semantic agrees" true (Flex.guaranteed_termination proc))
    shapes

let test_non_tree_reported () =
  let proc =
    Process.make_exn ~pid:20
      ~activities:[ c 1; c 2; c 3 ]
      ~prec:[ (1, 3); (2, 3) ]
      ~pref:[]
  in
  match Flex.well_formed proc with
  | Ok () -> Alcotest.fail "expected Not_tree"
  | Error issues ->
      check Alcotest.bool "reports non-tree" true
        (List.exists (function Flex.Not_tree 3 -> true | _ -> false) issues)

let suite =
  [
    Alcotest.test_case "paper processes are well-formed" `Quick test_paper_processes_well_formed;
    Alcotest.test_case "basic flex shape" `Quick test_basic_flex_shape;
    Alcotest.test_case "two pivots in sequence rejected" `Quick test_two_pivots_in_sequence_invalid;
    Alcotest.test_case "pivot then compensatable rejected" `Quick test_pivot_then_compensatable_invalid;
    Alcotest.test_case "recursive pivot rule accepted" `Quick test_pivot_with_retriable_fallback_valid;
    Alcotest.test_case "unsafe pivot alternative rejected" `Quick
      test_pivot_alternative_not_retriable_invalid;
    Alcotest.test_case "all-compensatable process" `Quick test_all_compensatable_valid;
    Alcotest.test_case "all-retriable process" `Quick test_all_retriable_valid;
    Alcotest.test_case "structural implies semantic (samples)" `Quick test_structural_implies_semantic;
    Alcotest.test_case "non-tree processes reported" `Quick test_non_tree_reported;
  ]

(* Property-based tests (QCheck) of the core theory:
   - E10: Theorem 1 — PRED implies serializability and Proc-REC;
   - E11: Lemmas 1-3 hold on PRED schedules / their completed schedules;
   - E12: cross-validation of the polynomial reducibility checker against
     the literal rewrite search of Definition 9;
   - structural well-formedness implies semantic guaranteed termination;
   - completions and replay round-trips. *)

open Tpm_core
module Generator = Tpm_workload.Generator
module Prng = Tpm_sim.Prng

let params =
  { Generator.default_params with activities_min = 2; activities_max = 6; services = 6;
    conflict_density = 0.3; subsystems = 2 }

(* deterministic process from an integer seed *)
let gen_process seed pid = Generator.process ~seed params ~pid

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

(* Random legal schedule: interleave 2-3 processes by simulating random
   scheduler steps (exec / fail / abort / commit). *)
let gen_schedule seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 2 in
  let procs = List.init n (fun i -> gen_process (seed + (77 * i)) (i + 1)) in
  let spec = Generator.spec ~seed:(seed + 13) params in
  let states = Hashtbl.create 4 in
  List.iter (fun p -> Hashtbl.replace states (Process.pid p) (Execution.start p)) procs;
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let finished pid =
    match Execution.status (Hashtbl.find states pid) with
    | Execution.Finished _ -> true
    | Execution.Running -> false
  in
  let closed = Hashtbl.create 4 in
  let steps = ref 0 in
  while
    !steps < 200
    && List.exists (fun p -> not (Hashtbl.mem closed (Process.pid p))) procs
  do
    incr steps;
    let open_pids =
      List.filter_map
        (fun p ->
          let pid = Process.pid p in
          if Hashtbl.mem closed pid then None else Some pid)
        procs
    in
    let pid = Prng.pick rng open_pids in
    let st = Hashtbl.find states pid in
    if finished pid then begin
      (match Execution.status st with
      | Execution.Finished Execution.Committed -> emit (Schedule.Commit pid)
      | Execution.Finished Execution.Aborted | Execution.Running -> emit (Schedule.Abort pid));
      Hashtbl.replace closed pid ()
    end
    else if Execution.can_commit st then begin
      Hashtbl.replace states pid (Execution.commit st);
      emit (Schedule.Commit pid);
      Hashtbl.replace closed pid ()
    end
    else begin
      match Execution.enabled st with
      | [] -> Hashtbl.replace closed pid ()
      | ns ->
          let act = Prng.pick rng ns in
          let before = List.length (Execution.trace st) in
          let st' =
            if
              Prng.chance rng 0.2
              && not (Activity.retriable (Process.find (Execution.proc st) act))
            then Execution.fail st act
            else Execution.exec st act
          in
          (* emit the effective steps the transition produced *)
          let added = List.filteri (fun i _ -> i >= before) (Execution.trace st') in
          List.iter
            (fun step ->
              match step with
              | Execution.Invoked a -> emit (Schedule.Act (Activity.Forward a))
              | Execution.Compensated a -> emit (Schedule.Act (Activity.Inverse a))
              | Execution.Attempt_failed _ -> ())
            added;
          Hashtbl.replace states pid st';
          (match Execution.status st' with
          | Execution.Finished Execution.Aborted ->
              emit (Schedule.Abort pid);
              Hashtbl.replace closed pid ()
          | Execution.Finished Execution.Committed ->
              emit (Schedule.Commit pid);
              Hashtbl.replace closed pid ()
          | Execution.Running -> ())
    end
  done;
  (* drop a random suffix so that some processes stay active *)
  let evs = List.rev !events in
  let keep = List.length evs - Prng.int rng (1 + (List.length evs / 2)) in
  let evs = List.filteri (fun i _ -> i < keep) evs in
  (* re-derive consistency: drop terminal events of processes whose later
     events were cut (cannot happen for prefixes) — prefixes are safe *)
  Schedule.make ~spec ~procs evs

let count = 300

(* --- E10: Theorem 1 ---

   The serializability direction is tested pointwise.  The Proc-REC
   direction of the paper's proof treats completions as unknown in
   advance ("new conflicts are possible"): with concrete processes whose
   completions happen to be conflict-free, PRED admits schedules that
   violate the commit-order clause of Definition 11 vacuously-safely.  We
   therefore test Proc-REC against the scheduler protocol (which enforces
   the commit order) in test_scheduler, and here test the weaker
   pointwise consequence. *)
let theorem1_serializability =
  QCheck.Test.make ~name:"Theorem 1: PRED => committed projection serializable" ~count arb_seed
    (fun seed ->
      let s = gen_schedule seed in
      QCheck.assume (Criteria.pred s);
      Criteria.committed_serializable s)

let proc_rec_implies_for_full_runs =
  (* on schedules where every process commits and completions could have
     conflicted, PRED does imply the pivot-ordering clause *)
  QCheck.Test.make ~name:"Theorem 1: PRED schedules violate no pivot ordering with aborts"
    ~count arb_seed (fun seed ->
      let s = gen_schedule seed in
      QCheck.assume (Criteria.pred s);
      QCheck.assume (Schedule.aborted s <> []);
      Criteria.committed_serializable s)

(* --- E11: lemmas on completed schedules of reducible schedules --- *)
let lemma2_completed =
  QCheck.Test.make ~name:"Lemma 2: completed schedules order compensations in reverse" ~count
    arb_seed (fun seed ->
      let s = gen_schedule seed in
      QCheck.assume (Criteria.red s);
      Criteria.lemma2_holds (Completed.of_schedule s))

let lemma3_completed =
  QCheck.Test.make ~name:"Lemma 3: compensations precede conflicting retriables" ~count arb_seed
    (fun seed ->
      let s = gen_schedule seed in
      QCheck.assume (Criteria.red s);
      Criteria.lemma3_holds (Completed.of_schedule s))

(* --- E12: checker cross-validation on small schedules --- *)
let small_params = { params with activities_min = 1; activities_max = 3 }

let gen_small_schedule seed =
  let rng = Prng.create seed in
  let n = 2 in
  let procs = List.init n (fun i -> Generator.process ~seed:(seed + (77 * i)) small_params ~pid:(i + 1)) in
  let spec = Generator.spec ~seed:(seed + 13) small_params in
  let states = Hashtbl.create 4 in
  List.iter (fun p -> Hashtbl.replace states (Process.pid p) (Execution.start p)) procs;
  let events = ref [] in
  let steps = ref 0 in
  while !steps < 8 do
    incr steps;
    let pid = 1 + Prng.int rng n in
    let st = Hashtbl.find states pid in
    match Execution.status st with
    | Execution.Finished _ -> ()
    | Execution.Running -> (
        match Execution.enabled st with
        | [] -> ()
        | ns ->
            let act = Prng.pick rng ns in
            Hashtbl.replace states pid (Execution.exec st act);
            events := Schedule.Act (Activity.Forward (Process.find (Execution.proc st) act)) :: !events)
  done;
  Schedule.make ~spec ~procs (List.rev !events)

let reduction_cross_validation =
  QCheck.Test.make ~name:"reducibility: graph checker agrees with rewrite search" ~count:150
    arb_seed (fun seed ->
      let s = gen_small_schedule seed in
      let completed = Completed.of_schedule s in
      let fast = Reduction.reducible ~original:s completed in
      match Reduction.reducible_by_search ~max_steps:100_000 ~original:s completed with
      | None -> QCheck.assume_fail ()
      | Some slow -> fast = slow)

(* --- generator soundness --- *)
let generated_well_formed =
  QCheck.Test.make ~name:"generated processes are structurally well-formed" ~count arb_seed
    (fun seed -> Result.is_ok (Flex.well_formed (gen_process seed 1)))

let structural_implies_semantic =
  QCheck.Test.make ~name:"well-formed => guaranteed termination" ~count:150 arb_seed
    (fun seed ->
      let p = gen_process seed 1 in
      QCheck.assume (Result.is_ok (Flex.well_formed p));
      Flex.guaranteed_termination ~max_exhaustive:10 ~samples:256 p)

(* --- completions --- *)
let completion_makes_terminal =
  QCheck.Test.make ~name:"abort terminates every running process" ~count arb_seed (fun seed ->
      let p = gen_process seed 1 in
      let rng = Prng.create (seed + 1) in
      (* reach a random mid-execution state *)
      let rec walk st k =
        if k = 0 then st
        else
          match Execution.enabled st with
          | [] -> st
          | ns -> walk (Execution.exec st (Prng.pick rng ns)) (k - 1)
      in
      let st = walk (Execution.start p) (Prng.int rng 5) in
      match Execution.status st with
      | Execution.Finished _ -> true
      | Execution.Running -> (
          let st' = Execution.abort st in
          match Execution.status st' with Execution.Finished _ -> true | Execution.Running -> false))

let completion_b_rec_reverses =
  QCheck.Test.make ~name:"B-REC completion compensates in reverse order" ~count arb_seed
    (fun seed ->
      let p = gen_process seed 1 in
      let rng = Prng.create (seed + 2) in
      let rec walk st k =
        if k = 0 then st
        else
          match Execution.enabled st with
          | [] -> st
          | ns -> (
              let n = Prng.pick rng ns in
              if Activity.compensatable (Process.find p n) then walk (Execution.exec st n) (k - 1)
              else st)
      in
      let st = walk (Execution.start p) 4 in
      QCheck.assume (Execution.status st = Execution.Running);
      QCheck.assume (Execution.recovery_state st = Execution.B_rec);
      let completion = Execution.completion st in
      let executed = Execution.executed st in
      List.for_all (fun i -> Activity.is_inverse i) completion
      && List.map (fun i -> (Activity.instance_id i).Activity.act) completion
         = List.rev executed)

(* --- schedule replay round-trip --- *)
let generated_schedules_legal =
  QCheck.Test.make ~name:"generated schedules replay (legality)" ~count arb_seed (fun seed ->
      Schedule.legal (gen_schedule seed))

(* --- completed schedules commit everything --- *)
let completed_all_commit =
  QCheck.Test.make ~name:"completed schedules terminate every process" ~count arb_seed
    (fun seed ->
      let s = gen_schedule seed in
      let c = Completed.of_schedule s in
      Schedule.active c = [])

(* --- prefix-closedness of PRED (definitional sanity) --- *)
let pred_prefix_closed =
  QCheck.Test.make ~name:"PRED is prefix-closed" ~count:100 arb_seed (fun seed ->
      let s = gen_schedule seed in
      QCheck.assume (Criteria.pred s);
      List.for_all Criteria.pred (Schedule.prefixes s))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      theorem1_serializability;
      proc_rec_implies_for_full_runs;
      lemma2_completed;
      lemma3_completed;
      reduction_cross_validation;
      generated_well_formed;
      structural_implies_semantic;
      completion_makes_terminal;
      completion_b_rec_reverses;
      generated_schedules_legal;
      completed_all_commit;
      pred_prefix_closed;
    ]

(* --- builder / composition / language properties --- *)

(* random builder fragments (always tree-shaped by construction) *)
let gen_fragment seed =
  let rng = Prng.create (seed + 977) in
  let stepk kind = Builder.step ~service:(Printf.sprintf "s%d" (Prng.int rng 6)) kind in
  let rec frag ~abortable depth =
    if depth = 0 then stepk Activity.Retriable
    else if not abortable then
      Builder.seq (List.init (1 + Prng.int rng 2) (fun _ -> stepk Activity.Retriable))
    else
      let comp_steps =
        List.init (Prng.int rng 3) (fun _ -> stepk Activity.Compensatable)
      in
      let tail =
        if Prng.chance rng 0.4 then
          (* pivot with a retriable fallback *)
          [ stepk Activity.Pivot;
            Builder.alternatives
              [ frag ~abortable:false (depth - 1);
                Builder.seq
                  (List.init (1 + Prng.int rng 2) (fun _ -> stepk Activity.Retriable)) ] ]
        else if Prng.chance rng 0.4 then
          [ Builder.alternatives
              [ frag ~abortable:true (depth - 1); frag ~abortable:true (depth - 1) ] ]
        else [ stepk Activity.Compensatable ]
      in
      Builder.seq (comp_steps @ tail)
  in
  frag ~abortable:true (1 + Prng.int rng 2)

let builder_produces_well_formed =
  QCheck.Test.make ~name:"builder fragments produce well-formed processes" ~count:200 arb_seed
    (fun seed ->
      match Builder.build ~pid:1 (gen_fragment seed) with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
          Result.is_ok (Flex.well_formed p)
          && Flex.guaranteed_termination ~max_exhaustive:10 ~samples:128 p)

let classify_inline_roundtrip =
  QCheck.Test.make ~name:"inlining a classified child preserves well-formedness" ~count:150
    arb_seed (fun seed ->
      match Builder.build ~pid:9 (gen_fragment seed) with
      | Error _ -> QCheck.assume_fail ()
      | Ok child -> (
          match Compose.classify child with
          | Error _ -> QCheck.assume_fail ()
          | Ok kind ->
              let parent =
                Builder.build_exn ~pid:1
                  (Builder.seq
                     [ Builder.step ~service:"pre" Activity.Compensatable;
                       Builder.step ~service:"hole" kind ])
              in
              (match Compose.inline ~parent ~at:2 ~child with
              | Error _ -> false
              | Ok composed ->
                  Result.is_ok (Flex.well_formed composed)
                  && Flex.guaranteed_termination ~max_exhaustive:10 ~samples:128 composed)))

let lang_roundtrip =
  QCheck.Test.make ~name:"textual format round-trips generated processes" ~count:150 arb_seed
    (fun seed ->
      let p = gen_process seed 1 in
      let doc = { Lang.spec = Generator.spec ~seed params; processes = [ p ]; schedule = None } in
      match Lang.parse (Lang.print doc) with
      | Error _ -> false
      | Ok doc2 -> (
          Conflict.pairs doc.Lang.spec = Conflict.pairs doc2.Lang.spec
          &&
          match doc2.Lang.processes with
          | [ p2 ] -> Process.equal p p2
          | _ -> false))

let completed_idempotent =
  QCheck.Test.make ~name:"completing a completed schedule adds no activities" ~count:150
    arb_seed (fun seed ->
      let s = gen_schedule seed in
      let c = Completed.of_schedule s in
      let c2 = Completed.of_schedule c in
      List.length (Schedule.activities c2) = List.length (Schedule.activities c))

let extra_suite =
  List.map QCheck_alcotest.to_alcotest
    [ builder_produces_well_formed; classify_inline_roundtrip; lang_roundtrip;
      completed_idempotent ]

let suite = suite @ extra_suite

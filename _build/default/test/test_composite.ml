(* The composite-systems layer of Section 3.6: local schedules,
   commit-order serializability and fork composition. *)

open Tpm_core
module Local = Tpm_composite.Local
module Fork = Tpm_composite.Fork

let check = Alcotest.check

let r tx item = Local.Op { tx; item; mode = `Read }
let w tx item = Local.Op { tx; item; mode = `Write }
let c tx = Local.Commit tx
let a tx = Local.Abort tx

let test_conflicts () =
  check Alcotest.bool "w/w conflict" true
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Write } { tx = 2; item = "x"; mode = `Write });
  check Alcotest.bool "r/w conflict" true
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Read } { tx = 2; item = "x"; mode = `Write });
  check Alcotest.bool "r/r commute" false
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Read } { tx = 2; item = "x"; mode = `Read });
  check Alcotest.bool "different items commute" false
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Write } { tx = 2; item = "y"; mode = `Write });
  check Alcotest.bool "same tx never conflicts" false
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Write } { tx = 1; item = "x"; mode = `Write })

let test_serializability () =
  let ok = Local.make [ w 1 "x"; c 1; w 2 "x"; c 2 ] in
  check Alcotest.bool "serial is serializable" true (Local.serializable ok);
  let bad = Local.make [ r 1 "x"; r 2 "y"; w 2 "x"; w 1 "y"; c 1; c 2 ] in
  check Alcotest.bool "crossing updates are not serializable" false (Local.serializable bad);
  (* aborted transactions do not count *)
  let saved = Local.make [ r 1 "x"; r 2 "y"; w 2 "x"; w 1 "y"; a 1; c 2 ] in
  check Alcotest.bool "abort removes the cycle" true (Local.serializable saved)

let test_commit_order () =
  (* overlapping execution, commits in conflict order: the weak order at
     work *)
  let weak_ok = Local.make [ w 1 "x"; w 2 "x"; c 1; c 2 ] in
  check Alcotest.bool "serializable" true (Local.serializable weak_ok);
  check Alcotest.bool "commit-order serializable" true
    (Local.commit_order_serializable weak_ok);
  (* same overlap but commits inverted: serializable would still hold for
     a single conflict pair, commit-order does not *)
  let weak_bad = Local.make [ w 1 "x"; w 2 "x"; c 2; c 1 ] in
  check Alcotest.bool "commit order violated" false
    (Local.commit_order_serializable weak_bad)

let test_respects_weak_order () =
  let l = Local.make [ w 1 "x"; w 2 "x"; c 1; c 2 ] in
  check Alcotest.bool "prescribed (1,2) realized" true (Local.respects_weak_order l [ (1, 2) ]);
  check Alcotest.bool "prescribed (2,1) not realized" false
    (Local.respects_weak_order l [ (2, 1) ]);
  (* a pair with an uncommitted member is unconstrained *)
  let open_ = Local.make [ w 1 "x"; w 2 "x"; c 1 ] in
  check Alcotest.bool "open transaction unconstrained" true
    (Local.respects_weak_order open_ [ (2, 1) ])

let test_rejects_events_after_terminal () =
  match Local.make [ w 1 "x"; c 1; w 1 "y" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "event after commit accepted"

(* fork composition over the paper's S''_t1 (figure 7): both processes'
   conflicting activities at one subsystem, executed weakly overlapped *)
let test_fork_consistent () =
  let global =
    let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
    Schedule.make ~spec:Fixtures.spec ~procs:[ Fixtures.p1; Fixtures.p2 ]
      [ fwd Fixtures.p2 1; fwd Fixtures.p2 2; fwd Fixtures.p2 3; fwd Fixtures.p2 4;
        fwd Fixtures.p1 1; fwd Fixtures.p2 5; fwd Fixtures.p1 2; fwd Fixtures.p1 3 ]
  in
  let token_of (a : Activity.t) = (100 * a.Activity.id.Activity.proc) + a.Activity.id.Activity.act in
  (* all fixture activities live in the "default" subsystem; build a local
     schedule realizing the prescribed weak order: conflicting pairs
     (a21,a11) -> (201,101), (a24,a12) -> (204,102), (a25,a15): a15 not
     executed. Locals overlap but commit in order. *)
  let l =
    Local.make
      [
        w 201 "s"; c 201; w 202 "k"; c 202; w 203 "m"; c 203; w 204 "t"; c 204;
        w 101 "s"; w 205 "u"; c 101; c 205; w 102 "t"; c 102; w 103 "z"; c 103;
      ]
  in
  let f = { Fork.global; locals = [ ("default", l) ]; token_of } in
  check Alcotest.bool "weak order prescribed" true
    (List.mem (201, 101) (Fork.prescribed_weak_order f "default"));
  check Alcotest.bool "locals commit-order serializable" true
    (Fork.locals_commit_order_serializable f);
  check Alcotest.bool "weak order realized" true (Fork.weak_order_realized f);
  check Alcotest.bool "composite consistent" true (Fork.consistent f)

let test_fork_inconsistent_local () =
  let global =
    let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
    Schedule.make ~spec:Fixtures.spec ~procs:[ Fixtures.p1; Fixtures.p2 ]
      [ fwd Fixtures.p2 1; fwd Fixtures.p1 1 ]
  in
  let token_of (a : Activity.t) = (100 * a.Activity.id.Activity.proc) + a.Activity.id.Activity.act in
  (* the subsystem commits against the prescribed weak order (201, 101) *)
  let l = Local.make [ w 201 "s"; w 101 "s"; c 101; c 201 ] in
  let f = { Fork.global; locals = [ ("default", l) ]; token_of } in
  check Alcotest.bool "weak order violated" false (Fork.weak_order_realized f);
  check Alcotest.bool "composite inconsistent" false (Fork.consistent f)

let suite =
  [
    Alcotest.test_case "operation conflicts" `Quick test_conflicts;
    Alcotest.test_case "local serializability" `Quick test_serializability;
    Alcotest.test_case "commit-order serializability" `Quick test_commit_order;
    Alcotest.test_case "prescribed weak orders" `Quick test_respects_weak_order;
    Alcotest.test_case "terminal events close transactions" `Quick
      test_rejects_events_after_terminal;
    Alcotest.test_case "fork composition consistent" `Quick test_fork_consistent;
    Alcotest.test_case "fork composition violation detected" `Quick test_fork_inconsistent_local;
  ]

lib/subsys/service.mli: Tpm_core Tpm_kv

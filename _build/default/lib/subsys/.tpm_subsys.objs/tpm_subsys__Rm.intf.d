lib/subsys/rm.mli: Service Tpm_kv

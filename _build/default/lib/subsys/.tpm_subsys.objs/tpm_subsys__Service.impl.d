lib/subsys/service.ml: Hashtbl List Printf Tpm_core Tpm_kv

lib/subsys/rm.ml: Hashtbl List Locks Printf Service Store Tpm_kv Tpm_sim Tx Value

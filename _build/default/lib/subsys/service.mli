(** Transactional services offered by subsystems.

    A service has a body executed inside a local transaction, a static
    read/write footprint (from which the conflict relation of Definition 6
    is derived conservatively), and a compensation strategy: a semantic
    inverse service, agent-style snapshot undo (Section 2.3: subsystems
    without native compensation are wrapped by a transactional
    coordination agent), or none (for pivot/retriable services). *)

(** How the effects of a committed invocation can be undone. *)
type compensation =
  | No_compensation
  | Inverse_service of string  (** name of the semantically inverse service *)
  | Snapshot_undo  (** restore the pre-images logged by the forward invocation *)

type body = Tpm_kv.Tx.t -> args:Tpm_kv.Value.t -> Tpm_kv.Value.t

type t = {
  name : string;
  body : body;
  compensation : compensation;
  reads : string list;  (** static key footprint *)
  writes : string list;
}

val make :
  name:string ->
  ?compensation:compensation ->
  ?reads:string list ->
  ?writes:string list ->
  body ->
  t

val effect_free : t -> bool
(** A service with an empty write footprint (Definition 1). *)

val footprints_conflict : t -> t -> bool
(** Write/read or write/write overlap on some key: the services do not
    commute in general. *)

module Registry : sig
  type service = t
  type t

  val create : unit -> t
  val register : t -> service -> unit
  (** @raise Invalid_argument on duplicate names. *)

  val find : t -> string -> service
  (** @raise Not_found *)

  val find_opt : t -> string -> service option
  val names : t -> string list

  val conflict_spec : t -> Tpm_core.Conflict.t
  (** The conflict relation derived from all registered footprints, with
      effect-free services declared as such.  A service is also put in
      conflict with itself when its writes overlap its own footprint. *)
end

type compensation =
  | No_compensation
  | Inverse_service of string
  | Snapshot_undo

type body = Tpm_kv.Tx.t -> args:Tpm_kv.Value.t -> Tpm_kv.Value.t

type t = {
  name : string;
  body : body;
  compensation : compensation;
  reads : string list;
  writes : string list;
}

let make ~name ?(compensation = No_compensation) ?(reads = []) ?(writes = []) body =
  { name; body; compensation; reads; writes }

let effect_free s = s.writes = []

let overlap a b = List.exists (fun k -> List.mem k b) a

let footprints_conflict a b =
  overlap a.writes (b.reads @ b.writes) || overlap b.writes (a.reads @ a.writes)

module Registry = struct
  type service = t
  type t = { services : (string, service) Hashtbl.t }

  let create () = { services = Hashtbl.create 32 }

  let register reg s =
    if Hashtbl.mem reg.services s.name then
      invalid_arg (Printf.sprintf "Service.Registry.register: duplicate service %s" s.name);
    Hashtbl.replace reg.services s.name s

  let find reg name = Hashtbl.find reg.services name
  let find_opt reg name = Hashtbl.find_opt reg.services name

  let names reg =
    Hashtbl.fold (fun k _ acc -> k :: acc) reg.services [] |> List.sort compare

  let conflict_spec reg =
    let services = List.map (find reg) (names reg) in
    let rec pairs acc = function
      | [] -> acc
      | s :: rest ->
          let acc = if overlap s.writes (s.reads @ s.writes) then Tpm_core.Conflict.add s.name s.name acc else acc in
          let acc =
            List.fold_left
              (fun acc s' ->
                if footprints_conflict s s' then Tpm_core.Conflict.add s.name s'.name acc
                else acc)
              acc rest
          in
          pairs acc rest
    in
    let spec = pairs Tpm_core.Conflict.empty services in
    List.fold_left
      (fun spec s -> if effect_free s then Tpm_core.Conflict.declare_effect_free s.name spec else spec)
      spec services
end

(** Baseline comparators for the evaluation:

    - {!serial_makespan} — strictly serial execution: every process runs
      alone; the makespan is the sum of the individual makespans.  The
      lower bound on safety, the upper bound on time.
    - {!naive_sr_config} — classical serializability-only scheduling
      (Section 1's "analyzing concurrency control without considering
      recovery"): fast, but its histories may be unrecoverable; the
      benchmarks count the PRED violations it produces.
    - {!conservative_config} — Lemma 1 applied by delaying (no deferred
      2PC commits). *)

val serial_makespan :
  make_rms:(unit -> Tpm_subsys.Rm.t list) ->
  spec:Tpm_core.Conflict.t ->
  ?config:Tpm_scheduler.Scheduler.config ->
  ?args_of:(Tpm_core.Activity.t -> Tpm_kv.Value.t) ->
  Tpm_core.Process.t list ->
  float
(** Runs every process in its own scheduler over fresh resource managers
    and sums the makespans. *)

val naive_sr_config : Tpm_scheduler.Scheduler.config
val conservative_config : Tpm_scheduler.Scheduler.config
val deferred_config : Tpm_scheduler.Scheduler.config
val quasi_config : Tpm_scheduler.Scheduler.config
val weak_order_config : Tpm_scheduler.Scheduler.config

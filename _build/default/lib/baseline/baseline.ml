module Scheduler = Tpm_scheduler.Scheduler

let serial_makespan ~make_rms ~spec ?(config = Scheduler.default_config)
    ?(args_of = fun _ -> Tpm_kv.Value.Nil) procs =
  List.fold_left
    (fun total proc ->
      let t = Scheduler.create ~config ~spec ~rms:(make_rms ()) () in
      Scheduler.submit t ~args_of proc;
      Scheduler.run t;
      total +. Scheduler.now t)
    0.0 procs

let naive_sr_config = { Scheduler.default_config with naive_sr = true }
let conservative_config = { Scheduler.default_config with mode = Scheduler.Conservative }
let deferred_config = { Scheduler.default_config with mode = Scheduler.Deferred }
let quasi_config = { Scheduler.default_config with mode = Scheduler.Quasi }
let weak_order_config = { Scheduler.default_config with weak_order = true }

lib/baseline/baseline.ml: List Tpm_kv Tpm_scheduler

lib/baseline/baseline.mli: Tpm_core Tpm_kv Tpm_scheduler Tpm_subsys

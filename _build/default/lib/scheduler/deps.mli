(** Process dependency tracking for the online scheduler.

    An edge [i -> j] records that some activity of [P_i] preceded a
    conflicting activity of [P_j] in the emerging schedule.  The scheduler
    keeps this graph acyclic (serializability), delays commits so that
    [C_i] precedes [C_j] along edges, and uses the uncommitted
    predecessors of a process to decide when its non-compensatable
    activities may commit (Lemma 1). *)

type t

val create : unit -> t
val add_process : t -> int -> unit
val add_edge : t -> int -> int -> unit
val edges : t -> (int * int) list

val would_cycle : t -> (int * int) list -> bool
(** Would adding all the given edges create a cycle among live
    (uncommitted, unaborted) processes? *)

val mark_committed : t -> int -> unit
val mark_aborted : t -> int -> unit
(** Aborted processes left no effects: their edges are dropped. *)

val committed : t -> int -> bool

val uncommitted_preds : t -> int -> int list
(** Live predecessors of a process (direct or transitive). *)

val live_succs : t -> int -> int list
(** Live direct successors. *)

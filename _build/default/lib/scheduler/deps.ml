module Int_set = Set.Make (Int)

type status =
  | Live
  | Committed
  | Aborted

type t = {
  mutable edge_set : (int * int) list;
  status : (int, status) Hashtbl.t;
}

let create () = { edge_set = []; status = Hashtbl.create 16 }

let add_process t pid =
  if not (Hashtbl.mem t.status pid) then Hashtbl.replace t.status pid Live

let status t pid = Option.value ~default:Live (Hashtbl.find_opt t.status pid)
let live t pid = status t pid = Live

let add_edge t i j =
  if i <> j && not (List.mem (i, j) t.edge_set) then t.edge_set <- (i, j) :: t.edge_set

let edges t = List.sort compare t.edge_set

(* Committed processes stay in the cycle check: their serialization
   position is fixed, so a cycle through them is just as fatal.  Only
   aborted processes (whose effects were compensated) drop out. *)
let relevant_graph t extra =
  let gone pid = status t pid = Aborted in
  let es =
    List.filter (fun (i, j) -> (not (gone i)) && not (gone j)) (extra @ t.edge_set)
  in
  Tpm_core.Digraph.make ~nodes:[] ~edges:es

let would_cycle t extra = Tpm_core.Digraph.has_cycle (relevant_graph t extra)

let mark_committed t pid = Hashtbl.replace t.status pid Committed

let mark_aborted t pid =
  Hashtbl.replace t.status pid Aborted;
  t.edge_set <- List.filter (fun (i, j) -> i <> pid && j <> pid) t.edge_set

let committed t pid = status t pid = Committed

let uncommitted_preds t pid =
  let g =
    Tpm_core.Digraph.make ~nodes:[ pid ]
      ~edges:(List.filter (fun (i, j) -> live t i || j = pid) t.edge_set)
  in
  Tpm_core.Digraph.nodes g
  |> List.filter (fun i -> i <> pid && live t i && Tpm_core.Digraph.reachable g i pid)

let live_succs t pid =
  List.filter_map (fun (i, j) -> if i = pid && live t j then Some j else None) t.edge_set
  |> List.sort_uniq compare

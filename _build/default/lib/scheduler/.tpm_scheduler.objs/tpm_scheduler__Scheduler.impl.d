lib/scheduler/scheduler.ml: Activity Completed Conflict Criteria Deps Digraph Execution Format Hashtbl List Option Printf Process Schedule String Tpm_core Tpm_kv Tpm_sim Tpm_subsys Tpm_wal

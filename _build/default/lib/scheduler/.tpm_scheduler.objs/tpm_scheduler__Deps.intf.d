lib/scheduler/deps.mli:

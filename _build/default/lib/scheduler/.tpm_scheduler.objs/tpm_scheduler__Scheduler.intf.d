lib/scheduler/scheduler.mli: Format Tpm_core Tpm_kv Tpm_sim Tpm_subsys Tpm_wal

lib/scheduler/deps.ml: Hashtbl Int List Option Set Tpm_core

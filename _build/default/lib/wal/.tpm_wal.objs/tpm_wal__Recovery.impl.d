lib/wal/recovery.ml: Activity Array Execution Format Hashtbl List Printf Process Result Tpm_core Wal

lib/wal/recovery.mli: Format Tpm_core Wal

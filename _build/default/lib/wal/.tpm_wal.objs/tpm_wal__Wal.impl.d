lib/wal/wal.ml: Format List Marshal Option

lib/wal/wal.mli: Format

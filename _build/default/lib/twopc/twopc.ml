type decision =
  | Committed
  | Aborted

type participant = {
  id : string;
  vote : unit -> bool;
  commit : unit -> unit;
  abort : unit -> unit;
}

type log_entry =
  | Began of string list
  | Voted of string * bool
  | Decided of decision
  | Finished

let run ?(on_log = fun _ -> ()) participants =
  on_log (Began (List.map (fun p -> p.id) participants));
  let rec collect = function
    | [] -> true
    | p :: rest ->
        let v = p.vote () in
        on_log (Voted (p.id, v));
        v && collect rest
  in
  let all_yes = collect participants in
  let decision = if all_yes then Committed else Aborted in
  on_log (Decided decision);
  List.iter (fun p -> match decision with Committed -> p.commit () | Aborted -> p.abort ()) participants;
  on_log Finished;
  decision

let participant_of_rm rm ~token =
  {
    id = Printf.sprintf "%s#%d" (Tpm_subsys.Rm.name rm) token;
    vote = (fun () -> List.mem token (Tpm_subsys.Rm.prepared_tokens rm));
    commit = (fun () -> Tpm_subsys.Rm.commit_prepared rm ~token);
    abort =
      (fun () ->
        if List.mem token (Tpm_subsys.Rm.prepared_tokens rm) then
          Tpm_subsys.Rm.abort_prepared rm ~token);
  }

let pp_decision fmt = function
  | Committed -> Format.pp_print_string fmt "committed"
  | Aborted -> Format.pp_print_string fmt "aborted"

let pp_log_entry fmt = function
  | Began ids ->
      Format.fprintf fmt "2pc-begin(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_string)
        ids
  | Voted (id, v) -> Format.fprintf fmt "vote(%s, %b)" id v
  | Decided d -> Format.fprintf fmt "decided(%a)" pp_decision d
  | Finished -> Format.pp_print_string fmt "2pc-done"

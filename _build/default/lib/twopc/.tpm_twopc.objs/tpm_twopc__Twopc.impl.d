lib/twopc/twopc.ml: Format List Printf Tpm_subsys

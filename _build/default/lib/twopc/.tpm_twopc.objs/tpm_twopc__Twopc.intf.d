lib/twopc/twopc.mli: Format Tpm_subsys

lib/sim/heap.mli:

lib/sim/des.mli:

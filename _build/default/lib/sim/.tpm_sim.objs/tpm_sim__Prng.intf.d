lib/sim/prng.mli:

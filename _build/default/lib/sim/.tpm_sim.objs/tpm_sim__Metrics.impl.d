lib/sim/metrics.ml: Array Format Hashtbl List Option

lib/sim/des.ml: Heap

type t = {
  counters : (string, int) Hashtbl.t;
  series : (string, float list ref) Hashtbl.t;  (* reverse chronological *)
}

let create () = { counters = Hashtbl.create 16; series = Hashtbl.create 16 }

let incr ?(by = 1) m name =
  let cur = Option.value ~default:0 (Hashtbl.find_opt m.counters name) in
  Hashtbl.replace m.counters name (cur + by)

let count m name = Option.value ~default:0 (Hashtbl.find_opt m.counters name)

let observe m name v =
  match Hashtbl.find_opt m.series name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.replace m.series name (ref [ v ])

let samples m name =
  match Hashtbl.find_opt m.series name with
  | Some r -> List.rev !r
  | None -> []

let total m name = List.fold_left ( +. ) 0.0 (samples m name)

let mean m name =
  match samples m name with
  | [] -> nan
  | l -> total m name /. float_of_int (List.length l)

let quantile m name q =
  match List.sort compare (samples m name) with
  | [] -> nan
  | l ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      let idx = int_of_float (q *. float_of_int (n - 1) +. 0.5) in
      arr.(max 0 (min (n - 1) idx))

let max_value m name = List.fold_left max neg_infinity (samples m name)

let counters m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.counters [] |> List.sort compare

let series_names m =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.series [] |> List.sort compare

let pp_summary fmt m =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %d@," k v) (counters m);
  List.iter
    (fun name ->
      Format.fprintf fmt "%-32s mean=%.3f p50=%.3f p99=%.3f n=%d@," name (mean m name)
        (quantile m name 0.5) (quantile m name 0.99)
        (List.length (samples m name)))
    (series_names m);
  Format.fprintf fmt "@]"

(** Discrete-event simulation engine: a virtual clock and an event queue.

    Callbacks scheduled with {!at} or {!after} run at their virtual time,
    in deterministic order (time, then scheduling order).  {!run} drives
    the queue until it drains or a horizon is reached. *)

type t

val create : unit -> t
val now : t -> float

val after : t -> float -> (t -> unit) -> unit
(** [after sim delay f] schedules [f] at [now sim +. delay]; [delay >= 0]. *)

val at : t -> float -> (t -> unit) -> unit
(** Absolute-time variant; the time must not lie in the past. *)

val run : ?until:float -> t -> unit
(** Processes events until the queue is empty or virtual time would exceed
    [until]. *)

val pending : t -> int

type t = {
  mutable clock : float;
  queue : (t -> unit) Heap.t;
}

let create () = { clock = 0.0; queue = Heap.create () }
let now sim = sim.clock

let at sim time f =
  if time < sim.clock then invalid_arg "Des.at: time lies in the past";
  Heap.push sim.queue ~key:time f

let after sim delay f =
  if delay < 0.0 then invalid_arg "Des.after: negative delay";
  at sim (sim.clock +. delay) f

let run ?(until = infinity) sim =
  let rec loop () =
    match Heap.peek_key sim.queue with
    | None -> ()
    | Some t when t > until -> ()
    | Some _ -> (
        match Heap.pop sim.queue with
        | None -> ()
        | Some (time, f) ->
            sim.clock <- max sim.clock time;
            f sim;
            loop ())
  in
  loop ()

let pending sim = Heap.size sim.queue

(** Simulation metrics: named counters and value series with summary
    statistics, used by the benchmark harness to report experiment rows. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val count : t -> string -> int

val observe : t -> string -> float -> unit
(** Appends a sample to a named series. *)

val samples : t -> string -> float list
(** Chronological samples of a series (empty if unknown). *)

val mean : t -> string -> float
val total : t -> string -> float
val quantile : t -> string -> float -> float
(** [quantile m name q] with [q] in [0, 1]; [nan] on an empty series. *)

val max_value : t -> string -> float
val counters : t -> (string * int) list
val series_names : t -> string list
val pp_summary : Format.formatter -> t -> unit

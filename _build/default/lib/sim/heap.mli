(** Binary min-heap keyed by floats, used as the simulation event queue.
    Ties are broken by insertion sequence, making event order fully
    deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> key:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Smallest key (earliest inserted among equals). *)

val peek_key : 'a t -> float option

module String_pair = struct
  type t = string * string

  let compare = Stdlib.compare
end

module Pair_set = Set.Make (String_pair)
module String_set = Set.Make (String)

type t = {
  conflicting : Pair_set.t;
  effect_free_services : String_set.t;
}

let norm s s' = if String.compare s s' <= 0 then (s, s') else (s', s)

let empty = { conflicting = Pair_set.empty; effect_free_services = String_set.empty }

let add s s' spec = { spec with conflicting = Pair_set.add (norm s s') spec.conflicting }
let of_pairs l = List.fold_left (fun spec (s, s') -> add s s' spec) empty l
let services_conflict spec s s' = Pair_set.mem (norm s s') spec.conflicting

let activities_conflict spec (a : Activity.t) (b : Activity.t) =
  (not (Activity.equal a b)) && services_conflict spec a.service b.service

let conflicts spec x y =
  let a = Activity.instance_base x and b = Activity.instance_base y in
  activities_conflict spec a b

let declare_effect_free s spec =
  { spec with effect_free_services = String_set.add s spec.effect_free_services }

let effect_free spec s = String_set.mem s spec.effect_free_services

let instance_effect_free spec i =
  effect_free spec (Activity.instance_base i).Activity.service

let pairs spec = Pair_set.elements spec.conflicting
let effect_free_services spec = String_set.elements spec.effect_free_services

let pp fmt spec =
  let pp_pair fmt (s, s') = Format.fprintf fmt "(%s, %s)" s s' in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_pair)
    (pairs spec)

(** Transactional processes (paper, Definition 5).

    A process is a triple [(A, ≪, ⊲)]: a set of activities, a precedence
    partial order [≪] over them (temporal: a successor may only start after
    its predecessors committed), and a preference order [⊲] over connectors
    (pairs of [≪]-edges sharing their source) that defines alternative
    execution paths evaluated in preference order.

    Out-edges of an activity [s] fall into two groups: the edges related by
    [⊲] are {e alternatives} of each other (exactly one is followed; the
    next one is only tried after the previous branch failed and was
    compensated back to [s]); edges not mentioned in [⊲] are
    {e unconditional} successors executed on every path through [s]. *)

type edge = int * int
(** A connector [(src, dst)] between activity ids. *)

type t

(** Validation failures reported by {!make}. *)
type violation =
  | Duplicate_activity of int
  | Wrong_process_id of Activity.id
  | Unknown_endpoint of edge
  | Precedence_cycle of int list
  | Preference_not_sibling of edge * edge  (** [⊲] relates edges with different sources *)
  | Preference_unknown_edge of edge
  | Preference_cycle of int  (** source activity whose alternatives are cyclically preferred *)
  | Self_edge of int
  | No_activities

val make :
  pid:int ->
  activities:Activity.t list ->
  prec:edge list ->
  pref:(edge * edge) list ->
  (t, violation list) result
(** Builds and validates a process.  [prec] lists direct [≪] edges, [pref]
    lists [⊲] pairs [(e, e')] meaning connector [e] is preferred over
    [e']. *)

val make_exn :
  pid:int ->
  activities:Activity.t list ->
  prec:edge list ->
  pref:(edge * edge) list ->
  t
(** @raise Invalid_argument on validation failure. *)

val pid : t -> int
val activities : t -> Activity.t list
val activity_ids : t -> int list
val size : t -> int
val find : t -> int -> Activity.t
(** @raise Not_found if the id is not in the process. *)

val find_opt : t -> int -> Activity.t option
val mem : t -> int -> bool

val prec_edges : t -> edge list
val pref_pairs : t -> (edge * edge) list

val succs : t -> int -> int list
(** Direct [≪]-successors, ascending. *)

val preds : t -> int -> int list
(** Direct [≪]-predecessors, ascending. *)

val before : t -> int -> int -> bool
(** [before p a b] iff [a ≪ b] in the transitive closure. *)

val roots : t -> int list
(** Activities without predecessors (process entry points). *)

val alternatives : t -> int -> int list
(** [alternatives p s] is the preference-ordered list of alternative
    successors of [s] (first = most preferred); empty if [s] has no
    [⊲]-related out-edges. *)

val unconditional_succs : t -> int -> int list
(** Out-neighbours of [s] not taking part in any alternative. *)

val choice_points : t -> int list
(** Activities with at least two alternatives. *)

val non_compensatable_ids : t -> int list
(** Ids of pivot and retriable activities, ascending. *)

val state_determining : t -> int option
(** The first non-compensatable activity on the most-preferred execution
    path, the [s_{i_0}] of the paper; [None] if every activity is
    compensatable. *)

val preferred_path : t -> int list
(** The most-preferred complete execution path (every choice resolved to
    its first alternative), in a [≪]-compatible order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_violation : Format.formatter -> violation -> unit

(** Activities of transactional processes (paper, Section 3.1).

    An activity is a transactional service invocation in an underlying
    subsystem.  Activities carry a termination guarantee: they are
    {e compensatable} (an inverse service exists), {e retriable}
    (guaranteed to commit after finitely many invocations), or {e pivot}
    (neither).  Compensating activities are themselves retriable and not
    compensatable (paper, Section 3.1). *)

(** Termination guarantee of an activity (flex transaction model). *)
type kind =
  | Compensatable
  | Pivot
  | Retriable

(** Identifier [a_{i_k}]: process id [i], activity id [k] within it. *)
type id = {
  proc : int;
  act : int;
}

(** A forward activity as declared in a process definition. *)
type t = {
  id : id;
  service : string;  (** service name; conflict behaviour is keyed on it *)
  kind : kind;
  subsystem : string;  (** subsystem providing the service *)
}

(** An occurrence in a schedule: the activity itself or its compensation
    [a^{-1}] (only meaningful for compensatable activities). *)
type instance =
  | Forward of t
  | Inverse of t

val make : proc:int -> act:int -> service:string -> kind:kind -> ?subsystem:string -> unit -> t
(** [make ~proc ~act ~service ~kind ()] builds an activity.  [subsystem]
    defaults to ["default"]. *)

val compensatable : t -> bool
val retriable : t -> bool
val pivot : t -> bool

val non_compensatable : t -> bool
(** Pivot or retriable: no inverse exists (paper, Section 3.1). *)

val id_equal : id -> id -> bool
val id_compare : id -> id -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val instance_id : instance -> id
val instance_proc : instance -> int
val instance_base : instance -> t
(** The underlying forward activity of an instance. *)

val is_inverse : instance -> bool
val instance_equal : instance -> instance -> bool
val instance_compare : instance -> instance -> int

val kind_to_string : kind -> string

val pp_kind : Format.formatter -> kind -> unit
val pp_id : Format.formatter -> id -> unit

val pp : Format.formatter -> t -> unit
(** Prints as in the paper, e.g. [a_{1_3}^c]. *)

val pp_instance : Format.formatter -> instance -> unit
(** Prints [a_{1_3}^c] or [a_{1_3}^-1]. *)

val to_string : t -> string
val instance_to_string : instance -> string

(** Correctness criteria for process schedules (paper, Sections 3.2–3.5):
    serializability, reducibility (RED), prefix-reducibility (PRED),
    process-recoverability (Proc-REC), and the scheduler obligations of
    Lemmas 1–3. *)

val serializable : Schedule.t -> bool
(** Conflict-serializability: the process-level conflict graph is acyclic. *)

val serialization_order : Schedule.t -> int list option
(** A serial order of the processes witnessing serializability. *)

val red : Schedule.t -> bool
(** Reducibility (Definition 9): the completed schedule reduces to a
    serial one. *)

val pred : Schedule.t -> bool
(** Prefix-reducibility (Definition 10): every prefix is reducible. *)

val first_irreducible_prefix : Schedule.t -> Schedule.t option
(** The shortest prefix that is not reducible, for diagnostics. *)

val process_recoverable : Schedule.t -> bool
(** Proc-REC (Definition 11): for every ordered conflicting pair
    [(a_ik, a_jl)] with [a_ik] before [a_jl], (1) [C_i] precedes [C_j]
    whenever [P_j] commits, and (2) the next non-compensatable activity of
    [P_j] after [a_jl] succeeds the next non-compensatable activity of
    [P_i] after [a_ik]. *)

val lemma1_holds : Schedule.t -> bool
(** Lemma 1 (conservative scheduler obligation): whenever an activity of an
    active process precedes a conflicting activity [a_jl] of [P_j],
    [a_jl] is compensatable and no non-compensatable activity of [P_j]
    executes afterwards (their commits are deferred until [C_i]). *)

val lemma2_holds : Schedule.t -> bool
(** Lemma 2: conflicting compensating activities appear in reverse order
    of their original activities. *)

val lemma3_holds : Schedule.t -> bool
(** Lemma 3: a compensating activity precedes every conflicting
    non-compensatable (retriable) completion activity. *)

val committed_serializable : Schedule.t -> bool
(** Serializability of the committed projection — the notion used in the
    proof of Theorem 1.  Still-active processes are excluded: they may yet
    abort, erasing their effects. *)

val sot : Schedule.t -> bool
(** The traditional SOT criterion ("serializable with ordered
    termination", [AVA+94]): the committed projection is serializable and
    every ordered pair of conflicting processes terminates in the same
    order.  SOT decides correctness from [S] alone, without building the
    expanded schedule — which, as Section 3.5 proves, is impossible for
    transactional processes: completions introduce conflicts invisible in
    [S].  {!sot} is provided to demonstrate that gap (see
    [test_sot.ml]). *)

val joint_compensation_respected : Schedule.t -> int list -> bool
(** Spheres of joint compensation ([Ley95], cited in the paper's
    introduction as a partial precursor): the given activities of one
    process form a sphere — if any of them is compensated in the
    schedule, all of its executed members must be compensated.  The flex
    backtracking of {!Execution} respects spheres that coincide with
    alternative branches by construction; this checker lets applications
    state coarser atomicity units and audit schedules against them. *)

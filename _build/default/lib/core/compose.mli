(** Subprocess composition — the future-work direction sketched in the
    paper's conclusion: "identify transactional execution guarantees of
    subprocesses".

    A whole process with guaranteed termination behaves, seen from a
    parent process, like a single activity with a derived termination
    guarantee: all-compensatable processes can be undone as a unit,
    all-retriable processes are guaranteed to commit, and everything else
    acts as a pivot (it terminates in a well-defined way but cannot be
    undone once its state-determining activity committed).  {!classify}
    derives that guarantee and {!inline} substitutes a subprocess for a
    placeholder activity of the parent, preserving well-formedness. *)

val classify : Process.t -> (Activity.kind, Flex.issue list) result
(** The termination guarantee of the process as a unit:
    [Compensatable] if every activity is compensatable, [Retriable] if
    every activity is retriable, [Pivot] otherwise.  Errors if the
    process is not structurally well-formed (a subprocess must have
    guaranteed termination to act as an activity at all). *)

type error =
  | Not_well_formed of Flex.issue list
  | Kind_mismatch of {
      placeholder : Activity.kind;
      derived : Activity.kind;
    }  (** the placeholder's declared guarantee differs from the child's *)
  | Unknown_placeholder of int
  | Join_would_form of int
      (** the child has several exit activities and the placeholder has
          successors: inlining would create a join, leaving the tree shape *)

val inline : parent:Process.t -> at:int -> child:Process.t -> (Process.t, error) result
(** [inline ~parent ~at ~child] replaces the placeholder activity [at] of
    [parent] by the whole graph of [child].  Child activities are
    renumbered (their ids are offset past the parent's maximum id) and
    adopt the parent's pid; predecessors of the placeholder precede the
    child's roots, the child's exits precede the placeholder's
    successors, and preference pairs that mention the placeholder are
    re-anchored.  The placeholder's declared kind must match
    [classify child]. *)

val pp_error : Format.formatter -> error -> unit

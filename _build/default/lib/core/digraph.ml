module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type t = {
  node_set : Int_set.t;
  edge_list : (int * int) list;
  succ_map : int list Int_map.t;
}

let make ~nodes ~edges =
  let edges = List.sort_uniq compare (List.filter (fun (a, b) -> a <> b) edges) in
  let node_set =
    List.fold_left
      (fun s (a, b) -> Int_set.add a (Int_set.add b s))
      (Int_set.of_list nodes) edges
  in
  let succ_map =
    List.fold_left
      (fun m (a, b) ->
        let cur = Option.value ~default:[] (Int_map.find_opt a m) in
        Int_map.add a (b :: cur) m)
      Int_map.empty edges
    |> Int_map.map (List.sort_uniq compare)
  in
  { node_set; edge_list = edges; succ_map }

let nodes g = Int_set.elements g.node_set
let edges g = g.edge_list
let succs g n = Option.value ~default:[] (Int_map.find_opt n g.succ_map)

(* DFS with colours; returns the first back-edge cycle found. *)
let find_cycle g =
  let colour = Hashtbl.create 16 in
  let result = ref None in
  let rec visit path n =
    match Hashtbl.find_opt colour n with
    | Some `Done -> ()
    | Some `Active ->
        if !result = None then begin
          let rec cut acc = function
            | [] -> acc
            | x :: rest -> if x = n then x :: acc else cut (x :: acc) rest
          in
          result := Some (cut [] path)
        end
    | None ->
        Hashtbl.replace colour n `Active;
        List.iter (fun m -> if !result = None then visit (n :: path) m) (succs g n);
        Hashtbl.replace colour n `Done
  in
  List.iter (fun n -> if !result = None then visit [] n) (nodes g);
  !result

let has_cycle g = find_cycle g <> None

let topo_sort g =
  if has_cycle g then None
  else begin
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let rec visit n =
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.replace visited n ();
        List.iter visit (succs g n);
        order := n :: !order
      end
    in
    List.iter visit (nodes g);
    Some !order
  end

let reachable g a b =
  let seen = Hashtbl.create 16 in
  let rec dfs n =
    List.exists
      (fun m ->
        m = b
        ||
        if Hashtbl.mem seen m then false
        else begin
          Hashtbl.replace seen m ();
          dfs m
        end)
      (succs g n)
  in
  dfs a

let transitive_closure g =
  List.concat_map
    (fun a -> List.filter_map (fun b -> if a <> b && reachable g a b then Some (a, b) else None) (nodes g))
    (nodes g)

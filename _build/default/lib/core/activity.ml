type kind =
  | Compensatable
  | Pivot
  | Retriable

type id = {
  proc : int;
  act : int;
}

type t = {
  id : id;
  service : string;
  kind : kind;
  subsystem : string;
}

type instance =
  | Forward of t
  | Inverse of t

let make ~proc ~act ~service ~kind ?(subsystem = "default") () =
  { id = { proc; act }; service; kind; subsystem }

let compensatable a = a.kind = Compensatable
let retriable a = a.kind = Retriable
let pivot a = a.kind = Pivot
let non_compensatable a = not (compensatable a)

let id_equal x y = x.proc = y.proc && x.act = y.act

let id_compare x y =
  match compare x.proc y.proc with
  | 0 -> compare x.act y.act
  | c -> c

let equal a b = id_equal a.id b.id
let compare a b = id_compare a.id b.id

let instance_id = function
  | Forward a | Inverse a -> a.id

let instance_proc i = (instance_id i).proc

let instance_base = function
  | Forward a | Inverse a -> a

let is_inverse = function
  | Forward _ -> false
  | Inverse _ -> true

let instance_equal x y =
  is_inverse x = is_inverse y && id_equal (instance_id x) (instance_id y)

let instance_compare x y =
  match id_compare (instance_id x) (instance_id y) with
  | 0 -> Stdlib.compare (is_inverse x) (is_inverse y)
  | c -> c

let kind_to_string = function
  | Compensatable -> "c"
  | Pivot -> "p"
  | Retriable -> "r"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)
let pp_id fmt { proc; act } = Format.fprintf fmt "a_{%d_%d}" proc act
let pp fmt a = Format.fprintf fmt "%a^%a" pp_id a.id pp_kind a.kind

let pp_instance fmt = function
  | Forward a -> pp fmt a
  | Inverse a -> Format.fprintf fmt "%a^-1" pp_id a.id

let to_string a = Format.asprintf "%a" pp a
let instance_to_string i = Format.asprintf "%a" pp_instance i

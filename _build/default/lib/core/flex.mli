(** Well-formed flex structures and guaranteed termination (paper,
    Section 3.1, after [ZNBB94]).

    A process has {e guaranteed termination} when at least one of its valid
    executions is always effected: every failure of a non-retriable
    activity either reaches a lower-priority alternative (after
    compensating the abandoned branch) or rolls the whole process back
    before its state-determining activity.  Well-formed flex structures —
    compensatable activities, then a pivot, then retriables, where a pivot
    may recursively be followed by a flex structure provided a
    retriable-only alternative exists for it — are a sufficient,
    structural criterion.

    Two checkers are provided: {!guaranteed_termination} explores failure
    scenarios semantically (ground truth), {!well_formed} checks the
    recursive structural rule (conservative: it may reject exotic shapes
    that the semantic checker accepts, and it requires tree-shaped
    precedence). *)

type issue =
  | Not_tree of int  (** activity with several predecessors *)
  | Unsafe_activity of int
      (** non-retriable activity reachable without backward recovery or a
          covering alternative *)
  | Unsafe_parallel_branch of int
      (** parallel unconditional branches mixing termination guarantees *)
  | Mixed_successors of int
      (** activity with both alternatives and unconditional successors *)

val well_formed : Process.t -> (unit, issue list) result
(** Structural check of the recursive well-formed-flex rule. *)

val guaranteed_termination :
  ?max_exhaustive:int -> ?samples:int -> ?seed:int -> Process.t -> bool
(** Semantic check: replays every failure scenario (each non-retriable
    activity either succeeds or fails permanently) through the execution
    engine and verifies that no scenario gets stuck.  Scenarios are
    enumerated exhaustively while the number of non-retriable activities
    is at most [max_exhaustive] (default [12]); beyond that, [samples]
    (default [2048]) random scenarios are drawn from a PRNG seeded with
    [seed]. *)

val pp_issue : Format.formatter -> issue -> unit

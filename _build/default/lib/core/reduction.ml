let rebuild like events = Schedule.make ~spec:(Schedule.spec like) ~procs:(Schedule.procs like) events

let remove_effect_free ~original s =
  let spec = Schedule.spec s in
  let committed = Schedule.committed original in
  let keep = function
    | Schedule.Act i ->
        not
          (Conflict.instance_effect_free spec i
          && not (List.mem (Activity.instance_proc i) committed))
    | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> true
  in
  rebuild s (List.filter keep (Schedule.events s))

(* Match Forward/Inverse occurrences of the same activity LIFO-wise,
   returning (position of forward, position of inverse) pairs. *)
let matched_pairs events =
  let stacks : (Activity.id, int list) Hashtbl.t = Hashtbl.create 16 in
  let pairs = ref [] in
  List.iteri
    (fun pos ev ->
      match ev with
      | Schedule.Act (Activity.Forward a) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt stacks a.Activity.id) in
          Hashtbl.replace stacks a.Activity.id (pos :: cur)
      | Schedule.Act (Activity.Inverse a) -> (
          match Hashtbl.find_opt stacks a.Activity.id with
          | Some (p :: rest) ->
              Hashtbl.replace stacks a.Activity.id rest;
              pairs := (p, pos) :: !pairs
          | Some [] | None -> ())
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    events;
  !pairs

let cancel_compensation_pairs s =
  let spec = Schedule.spec s in
  let rec fixpoint events =
    let arr = Array.of_list events in
    let removable (p, q) =
      let fwd = match arr.(p) with Schedule.Act i -> i | _ -> assert false in
      let blocked = ref false in
      for k = p + 1 to q - 1 do
        match arr.(k) with
        | Schedule.Act x -> if Conflict.conflicts spec fwd x then blocked := true
        | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ()
      done;
      not !blocked
    in
    let to_remove =
      List.concat_map (fun (p, q) -> if removable (p, q) then [ p; q ] else []) (matched_pairs events)
    in
    if to_remove = [] then events
    else
      fixpoint
        (List.filteri (fun pos _ -> not (List.mem pos to_remove)) events)
  in
  rebuild s (fixpoint (Schedule.events s))

let reduce ~original s = cancel_compensation_pairs (remove_effect_free ~original s)

let reducible ~original s =
  not (Digraph.has_cycle (Schedule.conflict_graph (reduce ~original s)))

(* Explicit rewrite search over activity sequences, for cross-validation. *)
let reducible_by_search ?(max_steps = 200_000) ~original s =
  let spec = Schedule.spec s in
  let start = Schedule.activities (remove_effect_free ~original s) in
  let serial seq =
    let rec blocks last seen = function
      | [] -> true
      | i :: rest ->
          let p = Activity.instance_proc i in
          if Some p = last then blocks last seen rest
          else if List.mem p seen then false
          else blocks (Some p) (p :: seen) rest
    in
    blocks None [] seq
  in
  let seen = Hashtbl.create 1024 in
  let steps = ref 0 in
  let exception Found in
  let exception Out_of_budget in
  let rec explore seq =
    incr steps;
    if !steps > max_steps then raise Out_of_budget;
    if Hashtbl.mem seen seq then ()
    else begin
      Hashtbl.replace seen seq ();
      if serial seq then raise Found;
      (* all single-step rewrites *)
      let rec moves prefix_rev = function
        | x :: (y :: rest as tail) ->
            (match (x, y) with
            | Activity.Forward a, Activity.Inverse b when Activity.equal a b ->
                explore (List.rev_append prefix_rev rest)
            | _ -> ());
            if
              Activity.instance_proc x <> Activity.instance_proc y
              && not (Conflict.conflicts spec x y)
            then explore (List.rev_append prefix_rev (y :: x :: rest));
            moves (x :: prefix_rev) tail
        | [ _ ] | [] -> ()
      in
      moves [] seq
    end
  in
  match explore start with
  | () -> Some false
  | exception Found -> Some true
  | exception Out_of_budget -> None

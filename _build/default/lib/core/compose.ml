let classify p =
  match Flex.well_formed p with
  | Error issues -> Error issues
  | Ok () ->
      let acts = Process.activities p in
      if List.for_all Activity.compensatable acts then Ok Activity.Compensatable
      else if List.for_all Activity.retriable acts then Ok Activity.Retriable
      else Ok Activity.Pivot

type error =
  | Not_well_formed of Flex.issue list
  | Kind_mismatch of {
      placeholder : Activity.kind;
      derived : Activity.kind;
    }
  | Unknown_placeholder of int
  | Join_would_form of int

let pp_error fmt = function
  | Not_well_formed issues ->
      Format.fprintf fmt "child not well-formed: %a"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") Flex.pp_issue)
        issues
  | Kind_mismatch { placeholder; derived } ->
      Format.fprintf fmt "placeholder is %a but the child classifies as %a" Activity.pp_kind
        placeholder Activity.pp_kind derived
  | Unknown_placeholder n -> Format.fprintf fmt "no activity %d in the parent" n
  | Join_would_form n ->
      Format.fprintf fmt "inlining at %d would join several child exits" n

let inline ~parent ~at ~child =
  match Process.find_opt parent at with
  | None -> Error (Unknown_placeholder at)
  | Some placeholder -> (
      match classify child with
      | Error issues -> Error (Not_well_formed issues)
      | Ok derived when derived <> placeholder.Activity.kind ->
          Error (Kind_mismatch { placeholder = placeholder.Activity.kind; derived })
      | Ok _ -> (
          let pid = Process.pid parent in
          let offset =
            List.fold_left max 0 (Process.activity_ids parent)
          in
          let renum n = n + offset in
          (* child activities renumbered and re-owned *)
          let child_acts =
            List.map
              (fun (a : Activity.t) ->
                Activity.make ~proc:pid ~act:(renum a.Activity.id.Activity.act)
                  ~service:a.Activity.service ~kind:a.Activity.kind
                  ~subsystem:a.Activity.subsystem ())
              (Process.activities child)
          in
          let child_prec =
            List.map (fun (a, b) -> (renum a, renum b)) (Process.prec_edges child)
          in
          let child_pref =
            List.map
              (fun ((a, b), (c, d)) -> ((renum a, renum b), (renum c, renum d)))
              (Process.pref_pairs child)
          in
          let child_roots = List.map renum (Process.roots child) in
          let child_exits =
            Process.activity_ids child
            |> List.filter (fun n -> Process.succs child n = [])
            |> List.map renum
          in
          let parent_succs = Process.succs parent at in
          match (child_exits, parent_succs) with
          | _ :: _ :: _, _ :: _ -> Error (Join_would_form at)
          | _ ->
              let keep_acts =
                List.filter
                  (fun (a : Activity.t) -> a.Activity.id.Activity.act <> at)
                  (Process.activities parent)
              in
              (* stitch: preds(at) -> child roots, child exits -> succs(at) *)
              let stitched_prec =
                List.concat_map
                  (fun (a, b) ->
                    if a = at then List.map (fun e -> (e, b)) child_exits
                    else if b = at then List.map (fun r -> (a, r)) child_roots
                    else [ (a, b) ])
                  (Process.prec_edges parent)
              in
              (* preference pairs mentioning edges into/out of the
                 placeholder are re-anchored the same way *)
              let remap_edge (a, b) =
                if a = at then
                  match child_exits with e :: _ -> (e, b) | [] -> (a, b)
                else if b = at then
                  match child_roots with r :: _ -> (a, r) | [] -> (a, b)
                else (a, b)
              in
              let stitched_pref =
                List.map (fun (e1, e2) -> (remap_edge e1, remap_edge e2)) (Process.pref_pairs parent)
              in
              (match
                 Process.make ~pid
                   ~activities:(keep_acts @ child_acts)
                   ~prec:(stitched_prec @ child_prec)
                   ~pref:(stitched_pref @ child_pref)
               with
              | Ok p -> Ok p
              | Error _ -> Error (Join_would_form at))))

module Int_map = Map.Make (Int)

type event =
  | Act of Activity.instance
  | Commit of int
  | Abort of int
  | Group_abort of int list

type status =
  | Active
  | Committed
  | Aborted

type t = {
  spec : Conflict.t;
  proc_map : Process.t Int_map.t;
  events : event list;  (* chronological *)
}

let event_procs = function
  | Act i -> [ Activity.instance_proc i ]
  | Commit i | Abort i -> [ i ]
  | Group_abort is -> is

let terminal = function
  | Commit _ | Abort _ -> true
  | Act _ | Group_abort _ -> false

let make ~spec ~procs events =
  let proc_map =
    List.fold_left
      (fun m p ->
        let pid = Process.pid p in
        if Int_map.mem pid m then
          invalid_arg (Printf.sprintf "Schedule.make: duplicate process id %d" pid)
        else Int_map.add pid p m)
      Int_map.empty procs
  in
  let seen_terminal = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      List.iter
        (fun pid ->
          match Int_map.find_opt pid proc_map with
          | None -> invalid_arg (Printf.sprintf "Schedule.make: unknown process %d" pid)
          | Some p ->
              if Hashtbl.mem seen_terminal pid then
                invalid_arg (Printf.sprintf "Schedule.make: event after terminal event of P_%d" pid);
              (match ev with
              | Act inst ->
                  let n = (Activity.instance_id inst).act in
                  if not (Process.mem p n) then
                    invalid_arg
                      (Printf.sprintf "Schedule.make: unknown activity %d of P_%d" n pid)
              | Commit _ | Abort _ | Group_abort _ -> ());
              if terminal ev then Hashtbl.replace seen_terminal pid ())
        (event_procs ev))
    events;
  { spec; proc_map; events }

let spec s = s.spec
let procs s = List.map snd (Int_map.bindings s.proc_map)
let proc_ids s = List.map fst (Int_map.bindings s.proc_map)
let find_proc s i = Int_map.find i s.proc_map
let events s = s.events
let length s = List.length s.events
let append s ev = make ~spec:s.spec ~procs:(procs s) (s.events @ [ ev ])

let activities s =
  List.filter_map (function Act i -> Some i | Commit _ | Abort _ | Group_abort _ -> None) s.events

let proc_activities s pid =
  List.filter (fun i -> Activity.instance_proc i = pid) (activities s)

let status_of s pid =
  let rec scan = function
    | [] -> Active
    | Commit i :: _ when i = pid -> Committed
    | Abort i :: _ when i = pid -> Aborted
    | _ :: rest -> scan rest
  in
  scan s.events

let with_status s st = List.filter (fun pid -> status_of s pid = st) (proc_ids s)
let active s = with_status s Active
let committed s = with_status s Committed
let aborted s = with_status s Aborted

let replay s pid =
  match Int_map.find_opt pid s.proc_map with
  | None -> Error (Printf.sprintf "unknown process %d" pid)
  | Some p ->
      let step acc ev =
        Result.bind acc (fun state ->
            match ev with
            | Act inst when Activity.instance_proc inst = pid ->
                Result.map_error
                  (fun e -> Printf.sprintf "P_%d: %s" pid e)
                  (Execution.replay_instance state inst)
            | Commit i when i = pid ->
                if Execution.can_commit state then Ok (Execution.commit state)
                else Error (Printf.sprintf "P_%d: commit while plan incomplete" pid)
            | Act _ | Commit _ | Abort _ | Group_abort _ -> Ok state)
      in
      List.fold_left step (Ok (Execution.start p)) s.events

let legal s = List.for_all (fun pid -> Result.is_ok (replay s pid)) (proc_ids s)

let conflict_pairs s =
  let acts = activities s in
  let rec walk = function
    | [] -> []
    | x :: rest ->
        List.filter_map
          (fun y ->
            if
              Activity.instance_proc x <> Activity.instance_proc y
              && Conflict.conflicts s.spec x y
            then Some (x, y)
            else None)
          rest
        @ walk rest
  in
  walk acts

let conflict_graph s =
  let edges =
    List.map
      (fun (x, y) -> (Activity.instance_proc x, Activity.instance_proc y))
      (conflict_pairs s)
  in
  Digraph.make ~nodes:(proc_ids s) ~edges

let prefixes s =
  let rec take_prefixes acc rev_cur = function
    | [] -> List.rev acc
    | ev :: rest ->
        let rev_cur = ev :: rev_cur in
        let prefix = { s with events = List.rev rev_cur } in
        take_prefixes (prefix :: acc) rev_cur rest
  in
  take_prefixes [ { s with events = [] } ] [] s.events

let pp_event fmt = function
  | Act i -> Activity.pp_instance fmt i
  | Commit i -> Format.fprintf fmt "C_%d" i
  | Abort i -> Format.fprintf fmt "A_%d" i
  | Group_abort is ->
      Format.fprintf fmt "A(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") (fun fmt i ->
             Format.fprintf fmt "P_%d" i))
        is

let pp fmt s =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_event)
    s.events

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type step =
  | Invoked of Activity.t
  | Attempt_failed of Activity.t
  | Compensated of Activity.t

type outcome =
  | Committed
  | Aborted

type status =
  | Running
  | Finished of outcome

type recovery_state =
  | B_rec
  | F_rec

type t = {
  proc : Process.t;
  rev_trace : step list;
  executed : Int_set.t;  (* committed and not compensated *)
  rev_exec_order : int list;  (* ids of [executed], most recent first *)
  pivots_done : Int_set.t;  (* non-compensatable activities ever committed *)
  choice : int Int_map.t;  (* choice point -> current alternative index *)
  status : status;
}

exception Stuck of string

let start proc =
  {
    proc;
    rev_trace = [];
    executed = Int_set.empty;
    rev_exec_order = [];
    pivots_done = Int_set.empty;
    choice = Int_map.empty;
    status = Running;
  }

let proc s = s.proc
let status s = s.status

let recovery_state s = if Int_set.is_empty s.pivots_done then B_rec else F_rec

let choice_index s n = Option.value ~default:0 (Int_map.find_opt n s.choice)

(* Activities reachable under the current alternative selection. *)
let plan s =
  let p = s.proc in
  let rec grow frontier seen =
    match frontier with
    | [] -> seen
    | n :: rest ->
        if Int_set.mem n seen then grow rest seen
        else
          let seen = Int_set.add n seen in
          let next =
            match Process.alternatives p n with
            | [] -> Process.succs p n
            | alts ->
                let i = min (choice_index s n) (List.length alts - 1) in
                List.nth alts i :: Process.unconditional_succs p n
          in
          grow (next @ rest) seen
  in
  grow (Process.roots p) Int_set.empty

let enabled s =
  match s.status with
  | Finished _ -> []
  | Running ->
      let pl = plan s in
      Int_set.elements pl
      |> List.filter (fun n ->
             (not (Int_set.mem n s.executed))
             && List.for_all
                  (fun m -> (not (Int_set.mem m pl)) || Int_set.mem m s.executed)
                  (Process.preds s.proc n))

let executed s = List.rev s.rev_exec_order

let require_enabled fn s n =
  if not (List.mem n (enabled s)) then
    invalid_arg (Printf.sprintf "Execution.%s: activity %d is not enabled" fn n)

let exec s n =
  require_enabled "exec" s n;
  let a = Process.find s.proc n in
  {
    s with
    rev_trace = Invoked a :: s.rev_trace;
    executed = Int_set.add n s.executed;
    rev_exec_order = n :: s.rev_exec_order;
    pivots_done =
      (if Activity.non_compensatable a then Int_set.add n s.pivots_done else s.pivots_done);
  }

(* Compensate the given executed activities, most recently executed first. *)
let compensate_set s set =
  let to_undo = List.filter (fun n -> Int_set.mem n set) s.rev_exec_order in
  List.fold_left
    (fun s n ->
      let a = Process.find s.proc n in
      if Activity.non_compensatable a then
        raise (Stuck (Printf.sprintf "cannot compensate non-compensatable activity %d" n));
      {
        s with
        rev_trace = Compensated a :: s.rev_trace;
        executed = Int_set.remove n s.executed;
        rev_exec_order = List.filter (fun m -> m <> n) s.rev_exec_order;
      })
    s to_undo

let full_backward_abort s =
  let s = compensate_set s s.executed in
  { s with status = Finished Aborted }

(* Choice points, nearest (deepest in ≪) first, that (1) are executed,
   (2) still have an untried lower-priority alternative, (3) lose [n] from
   the plan when switched, and (4) whose abandoned branch is fully
   compensatable. Returns the first viable one with its branch. *)
let find_backtrack_target s n =
  let p = s.proc in
  let candidates =
    Process.choice_points p
    |> List.filter (fun cp ->
           Int_set.mem cp s.executed
           && choice_index s cp < List.length (Process.alternatives p cp) - 1
           && Process.before p cp n)
  in
  (* nearest first: cp2 before cp1 in the result if cp1 ≪ cp2 *)
  let nearest_first =
    List.sort (fun c1 c2 -> if Process.before p c1 c2 then 1 else if Process.before p c2 c1 then -1 else compare c1 c2) candidates
  in
  let viable cp =
    let branch = Int_set.filter (fun x -> Process.before p cp x) s.executed in
    let all_comp =
      Int_set.for_all (fun x -> Activity.compensatable (Process.find p x)) branch
    in
    if not all_comp then None
    else
      let switched = { s with choice = Int_map.add cp (choice_index s cp + 1) s.choice } in
      if Int_set.mem n (plan switched) then None else Some (cp, branch)
  in
  List.find_map viable nearest_first

let fail s n =
  require_enabled "fail" s n;
  let a = Process.find s.proc n in
  let s = { s with rev_trace = Attempt_failed a :: s.rev_trace } in
  if Activity.retriable a then s
  else
    match find_backtrack_target s n with
    | Some (cp, branch) ->
        let s = compensate_set s branch in
        (* abandoned choice points may be re-entered via the new branch *)
        let choice =
          Int_map.add cp (choice_index s cp + 1)
            (Int_map.filter (fun m _ -> not (Int_set.mem m branch)) s.choice)
        in
        { s with choice }
    | None ->
        if Int_set.is_empty s.pivots_done then full_backward_abort s
        else
          raise
            (Stuck
               (Printf.sprintf
                  "activity %d failed after a state-determining activity with no alternative" n))

let can_commit s =
  match s.status with
  | Finished _ -> false
  | Running -> Int_set.for_all (fun n -> Int_set.mem n s.executed) (plan s)

let commit s =
  if not (can_commit s) then invalid_arg "Execution.commit: plan not fully executed";
  { s with status = Finished Committed }

let state_determining_executed s =
  List.find_opt
    (fun n -> Activity.non_compensatable (Process.find s.proc n))
    s.rev_exec_order

(* Switch every choice point whose current branch is incomplete to its
   lowest-priority alternative (the retriable-only safe path).  A choice
   point followed by a committed non-compensatable activity must not
   switch: the completion continues forward from the last
   state-determining element (paper, Section 3.1). *)
let switch_to_safe_alternatives s =
  let p = s.proc in
  let rec fixpoint s =
    let pl = plan s in
    let pending =
      Process.choice_points p
      |> List.filter (fun cp ->
             Int_set.mem cp s.executed
             && Int_set.mem cp pl
             && (not
                   (Int_set.exists
                      (fun x ->
                        Process.before p cp x
                        && Activity.non_compensatable (Process.find p x))
                      s.executed))
             &&
             let alts = Process.alternatives p cp in
             let last = List.length alts - 1 in
             choice_index s cp < last
             &&
             (* current branch incomplete: some plan activity after cp not executed *)
             Int_set.exists
               (fun x -> Process.before p cp x && not (Int_set.mem x s.executed))
               pl)
    in
    match pending with
    | [] -> s
    | cp :: _ ->
        let alts = Process.alternatives p cp in
        fixpoint { s with choice = Int_map.add cp (List.length alts - 1) s.choice }
  in
  fixpoint s

let rec run_to_completion s =
  if can_commit s then { s with status = Finished Committed }
  else
    match enabled s with
    | [] ->
        raise (Stuck "forward recovery blocked: nothing enabled but plan incomplete")
    | n :: _ ->
        let a = Process.find s.proc n in
        if not (Activity.retriable a) then
          raise
            (Stuck
               (Printf.sprintf "forward recovery path contains non-retriable activity %d" n));
        run_to_completion (exec s n)

let abort s =
  match s.status with
  | Finished _ -> invalid_arg "Execution.abort: process already finished"
  | Running -> (
      match state_determining_executed s with
      | None -> full_backward_abort s
      | Some sd ->
          (* local backward recovery: undo everything executed after [sd] *)
          let after_sd =
            let rec take acc = function
              | [] -> acc
              | n :: _ when n = sd -> acc
              | n :: rest -> take (Int_set.add n acc) rest
            in
            take Int_set.empty s.rev_exec_order
          in
          let s = compensate_set s after_sd in
          let s = switch_to_safe_alternatives s in
          run_to_completion s)

(* Replay-mode branch switch: find a choice assignment under which [n]
   becomes invocable.  Only choice points whose abandoned branch has been
   fully compensated may be re-targeted. *)
let adjust_choice_for s n =
  let p = s.proc in
  let try_one cp j =
    let branch_clear =
      not (Int_set.exists (fun x -> Process.before p cp x) s.executed)
    in
    if not branch_clear then None
    else
      let choice =
        Int_map.add cp j (Int_map.filter (fun m _ -> Int_set.mem m s.executed) s.choice)
      in
      let s' = { s with choice } in
      if List.mem n (enabled s') then Some s' else None
  in
  Process.choice_points p
  |> List.filter (fun cp -> Int_set.mem cp s.executed)
  |> List.find_map (fun cp ->
         let alts = Process.alternatives p cp in
         List.find_map
           (fun j -> if j = choice_index s cp then None else try_one cp j)
           (List.init (List.length alts) Fun.id))

let replay_instance s inst =
  match s.status with
  | Finished _ -> Error "process already finished"
  | Running -> (
      let a = Activity.instance_base inst in
      let n = a.Activity.id.act in
      if not (Process.mem s.proc n) then Error (Printf.sprintf "unknown activity %d" n)
      else
        match inst with
        | Activity.Forward _ ->
            if Int_set.mem n s.executed then
              Error (Printf.sprintf "activity %d already executed" n)
            else if List.mem n (enabled s) then Ok (exec s n)
            else (
              match adjust_choice_for s n with
              | Some s' -> Ok (exec s' n)
              | None -> Error (Printf.sprintf "activity %d is not invocable here" n))
        | Activity.Inverse _ -> (
            if not (Activity.compensatable (Process.find s.proc n)) then
              Error (Printf.sprintf "activity %d is not compensatable" n)
            else
              match s.rev_exec_order with
              | last :: _ when last = n -> Ok (compensate_set s (Int_set.singleton n))
              | _ -> Error (Printf.sprintf "activity %d is not the last executed" n)))

let trace s = List.rev s.rev_trace

let effective_of_steps steps =
  List.filter_map
    (function
      | Invoked a -> Some (Activity.Forward a)
      | Compensated a -> Some (Activity.Inverse a)
      | Attempt_failed _ -> None)
    steps

let effective_trace s = effective_of_steps (trace s)

let completion s =
  match s.status with
  | Finished _ -> []
  | Running ->
      let before = List.length s.rev_trace in
      let s' = abort s in
      let added = List.filteri (fun i _ -> i >= before) (trace s') in
      effective_of_steps added

let pp_step fmt = function
  | Invoked a -> Activity.pp fmt a
  | Attempt_failed a -> Format.fprintf fmt "%a!fail" Activity.pp_id a.Activity.id
  | Compensated a -> Format.fprintf fmt "%a^-1" Activity.pp_id a.Activity.id

let pp fmt s =
  let status_str =
    match s.status with
    | Running -> "running"
    | Finished Committed -> "committed"
    | Finished Aborted -> "aborted"
  in
  Format.fprintf fmt "@[<h>P_%d[%s]: %a@]" (Process.pid s.proc) status_str
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_step)
    (trace s)

let valid_executions ?(max_states = 100_000) p =
  let seen_traces = ref [] in
  let states = ref 0 in
  let add_trace s =
    let eff = effective_trace s in
    if eff <> [] && not (List.mem eff !seen_traces) then seen_traces := eff :: !seen_traces
  in
  let rec explore s =
    incr states;
    if !states > max_states then ()
    else if can_commit s then add_trace (commit s)
    else
      match enabled s with
      | [] -> ( match s.status with Finished _ -> add_trace s | Running -> ())
      | ns ->
          List.iter
            (fun n ->
              explore (exec s n);
              if not (Activity.retriable (Process.find p n)) then
                let s' = fail s n in
                match s'.status with
                | Finished _ -> add_trace s'
                | Running -> explore s')
            ns
  in
  explore (start p);
  List.sort compare !seen_traces

(* Positions of forward occurrences in the original schedule, used to put
   compensating activities in reverse order of their originals. *)
let forward_positions s =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun pos ev ->
      match ev with
      | Schedule.Act (Activity.Forward a) -> Hashtbl.replace tbl a.Activity.id pos
      | Schedule.Act (Activity.Inverse _) | Schedule.Commit _ | Schedule.Abort _
      | Schedule.Group_abort _ -> ())
    (Schedule.events s);
  tbl

(* Relative order of the completing processes: conflicting forward
   completion activities must follow an order consistent with the edges
   already fixed by the schedule — both occurrence-vs-occurrence conflicts
   and occurrence-vs-completion conflicts (executed activities always
   precede completion activities in the completed schedule). *)
let process_order s completions =
  let spec = Schedule.spec s in
  (* aborted processes left no effects: their do/undo pairs cancel and must
     not constrain the order *)
  let aborted = Schedule.aborted s in
  let occurrences =
    List.filter
      (fun x -> not (List.mem (Activity.instance_proc x) aborted))
      (Schedule.activities s)
  in
  let completion_of =
    List.concat_map (fun (pid, insts) -> List.map (fun i -> (pid, i)) insts) completions
  in
  let occ_occ_edges =
    let rec walk = function
      | [] -> []
      | x :: rest ->
          List.filter_map
            (fun y ->
              if
                Activity.instance_proc x <> Activity.instance_proc y
                && Conflict.conflicts spec x y
              then Some (Activity.instance_proc x, Activity.instance_proc y)
              else None)
            rest
          @ walk rest
    in
    walk occurrences
  in
  let occ_cmp_edges =
    List.concat_map
      (fun x ->
        let q = Activity.instance_proc x in
        List.filter_map
          (fun (r, y) ->
            if r <> q && (not (Activity.is_inverse y)) && Conflict.conflicts spec x y then
              Some (q, r)
            else None)
          completion_of)
      occurrences
  in
  let g =
    Digraph.make ~nodes:(Schedule.proc_ids s) ~edges:(occ_occ_edges @ occ_cmp_edges)
  in
  match Digraph.topo_sort g with
  | Some order ->
      Some (fun pid -> Option.value ~default:max_int (List.find_index (( = ) pid) order))
  | None -> None

let completion_order s completions =
  let spec = Schedule.spec s in
  let fwd_pos = forward_positions s in
  let graph = Schedule.conflict_graph s in
  let proc_pos = process_order s completions in
  (* nodes are (process, index-in-completion) pairs, encoded for sorting *)
  let items =
    List.concat_map
      (fun (pid, insts) -> List.mapi (fun k inst -> ((pid, k), inst)) insts)
      completions
  in
  let constraints = ref [] in
  let add_edge a b = constraints := (a, b) :: !constraints in
  (* internal order *)
  List.iter
    (fun (pid, insts) ->
      List.iteri (fun k _ -> if k > 0 then add_edge (pid, k - 1) (pid, k)) insts)
    completions;
  (* pairwise conflicting completion activities of distinct processes *)
  let rec pairs = function
    | [] -> ()
    | (((pi, _) as ka), x) :: rest ->
        List.iter
          (fun (((pj, _) as kb), y) ->
            if pi <> pj && Conflict.conflicts spec x y then
              match (x, y) with
              | Activity.Inverse a, Activity.Inverse b ->
                  (* Lemma 2: reverse order of the originals *)
                  let pa = Hashtbl.find_opt fwd_pos a.Activity.id
                  and pb = Hashtbl.find_opt fwd_pos b.Activity.id in
                  if pa <= pb then add_edge kb ka else add_edge ka kb
              | Activity.Inverse _, Activity.Forward _ -> add_edge ka kb (* Lemma 3 *)
              | Activity.Forward _, Activity.Inverse _ -> add_edge kb ka
              | Activity.Forward _, Activity.Forward _ -> (
                  (* retriables: follow the fixed order of the schedule *)
                  match proc_pos with
                  | Some pos when pos pi <> pos pj ->
                      if pos pi < pos pj then add_edge ka kb else add_edge kb ka
                  | Some _ | None ->
                      if Digraph.reachable graph pi pj then add_edge ka kb
                      else if Digraph.reachable graph pj pi then add_edge kb ka
                      else if pi < pj then add_edge ka kb
                      else add_edge kb ka))
          rest;
        pairs rest
  in
  pairs items;
  (* topological sort over the item keys; fall back to declaration order on
     a cycle (the reducibility check will then reject the schedule) *)
  let key_id = Hashtbl.create 16 in
  List.iteri (fun i (k, _) -> Hashtbl.replace key_id k i) items;
  let arr = Array.of_list items in
  let edges =
    List.filter_map
      (fun (a, b) ->
        match (Hashtbl.find_opt key_id a, Hashtbl.find_opt key_id b) with
        | Some ia, Some ib -> Some (ia, ib)
        | _ -> None)
      !constraints
  in
  let g = Digraph.make ~nodes:(List.init (Array.length arr) Fun.id) ~edges in
  match Digraph.topo_sort g with
  | Some order -> List.map (fun i -> snd arr.(i)) order
  | None -> List.map snd items

let of_schedule s =
  let replay_or_fail pid upto =
    let partial = Schedule.make ~spec:(Schedule.spec s) ~procs:(Schedule.procs s) upto in
    match Schedule.replay partial pid with
    | Ok st -> st
    | Error e -> invalid_arg (Printf.sprintf "Completed.of_schedule: illegal schedule: %s" e)
  in
  (* walk events, replacing each Abort by the process's completion + commit *)
  let rec walk seen_rev acc = function
    | [] -> List.rev acc
    | Schedule.Abort pid :: rest ->
        let st = replay_or_fail pid (List.rev seen_rev) in
        let completion = Execution.completion st in
        let acc =
          (Schedule.Commit pid :: List.rev_map (fun i -> Schedule.Act i) completion) @ acc
        in
        walk (Schedule.Abort pid :: seen_rev) acc rest
    | ev :: rest -> walk (ev :: seen_rev) (ev :: acc) rest
  in
  let body = walk [] [] (Schedule.events s) in
  let actives = Schedule.active s in
  let tail =
    match actives with
    | [] -> []
    | _ ->
        let completions =
          List.map
            (fun pid ->
              let st = replay_or_fail pid (Schedule.events s) in
              (pid, Execution.completion st))
            actives
        in
        let ordered = completion_order s completions in
        (Schedule.Group_abort actives :: List.map (fun i -> Schedule.Act i) ordered)
        @ List.map (fun pid -> Schedule.Commit pid) actives
  in
  Schedule.make ~spec:(Schedule.spec s) ~procs:(Schedule.procs s) (body @ tail)

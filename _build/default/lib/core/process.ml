module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type edge = int * int

type t = {
  pid : int;
  acts : Activity.t Int_map.t;
  prec : edge list;
  pref : (edge * edge) list;
  succs_map : int list Int_map.t;
  preds_map : int list Int_map.t;
  alt_map : int list Int_map.t;
  descendants : Int_set.t Int_map.t;
}

type violation =
  | Duplicate_activity of int
  | Wrong_process_id of Activity.id
  | Unknown_endpoint of edge
  | Precedence_cycle of int list
  | Preference_not_sibling of edge * edge
  | Preference_unknown_edge of edge
  | Preference_cycle of int
  | Self_edge of int
  | No_activities

let uniq_sorted l = List.sort_uniq compare l

let adjacency edges =
  List.fold_left
    (fun m (a, b) ->
      let cur = Option.value ~default:[] (Int_map.find_opt a m) in
      Int_map.add a (b :: cur) m)
    Int_map.empty edges
  |> Int_map.map uniq_sorted

(* Kahn topological sort; returns [Error cycle_nodes] on a cycle. *)
let topo_sort nodes edges =
  let succs = adjacency edges in
  let indeg =
    List.fold_left
      (fun m (_, b) -> Int_map.add b (1 + Option.value ~default:0 (Int_map.find_opt b m)) m)
      (List.fold_left (fun m n -> Int_map.add n 0 m) Int_map.empty nodes)
      edges
  in
  let rec loop indeg ready acc =
    match ready with
    | [] ->
        let remaining = Int_map.filter (fun _ d -> d > 0) indeg in
        if Int_map.is_empty remaining then Ok (List.rev acc)
        else Error (List.map fst (Int_map.bindings remaining))
    | n :: rest ->
        let targets = Option.value ~default:[] (Int_map.find_opt n succs) in
        let indeg, newly =
          List.fold_left
            (fun (indeg, newly) m ->
              let d = Int_map.find m indeg - 1 in
              (Int_map.add m d indeg, if d = 0 then m :: newly else newly))
            (indeg, []) targets
        in
        loop indeg (List.merge compare rest (uniq_sorted newly)) (n :: acc)
  in
  let ready = List.filter (fun n -> Int_map.find n indeg = 0) nodes in
  loop indeg (uniq_sorted ready) []

let descendants_of succs_map nodes =
  let rec dfs seen n =
    let targets = Option.value ~default:[] (Int_map.find_opt n succs_map) in
    List.fold_left
      (fun seen m -> if Int_set.mem m seen then seen else dfs (Int_set.add m seen) m)
      seen targets
  in
  List.fold_left (fun acc n -> Int_map.add n (dfs Int_set.empty n) acc) Int_map.empty nodes

let validate ~pid ~activities ~prec ~pref =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  if activities = [] then err No_activities;
  let ids = List.map (fun (a : Activity.t) -> a.id.act) activities in
  let rec dup_check = function
    | [] -> ()
    | x :: rest -> (if List.mem x rest then err (Duplicate_activity x)); dup_check rest
  in
  dup_check ids;
  List.iter
    (fun (a : Activity.t) -> if a.id.proc <> pid then err (Wrong_process_id a.id))
    activities;
  let known n = List.mem n ids in
  List.iter
    (fun ((a, b) as e) ->
      if a = b then err (Self_edge a)
      else if not (known a && known b) then err (Unknown_endpoint e))
    prec;
  let prec_ok = List.filter (fun (a, b) -> a <> b && known a && known b) prec in
  (match topo_sort ids prec_ok with
  | Ok _ -> ()
  | Error cyc -> err (Precedence_cycle cyc));
  let edge_known e = List.mem e prec_ok in
  List.iter
    (fun (((s1, _) as e1), ((s2, _) as e2)) ->
      if not (edge_known e1) then err (Preference_unknown_edge e1);
      if not (edge_known e2) then err (Preference_unknown_edge e2);
      if edge_known e1 && edge_known e2 && s1 <> s2 then err (Preference_not_sibling (e1, e2)))
    pref;
  !errs

(* Preference-ordered alternatives per source: the dsts of ⊲-related
   out-edges, required to form a total order. *)
let build_alt_map pref =
  let sources =
    uniq_sorted (List.map (fun (((s, _) : edge), (_ : edge)) -> s) pref)
  in
  List.fold_left
    (fun (acc, errs) s ->
      let local =
        List.filter_map
          (fun (((s1, d1), (s2, d2)) : edge * edge) ->
            if s1 = s && s2 = s then Some (d1, d2) else None)
          pref
      in
      let dsts = uniq_sorted (List.concat_map (fun (a, b) -> [ a; b ]) local) in
      match topo_sort dsts local with
      | Error _ -> (acc, Preference_cycle s :: errs)
      | Ok order ->
          (* A chain is required: every pair must be transitively related. *)
          let reach = descendants_of (adjacency local) dsts in
          let total =
            let rec chain = function
              | a :: (b :: _ as rest) ->
                  Int_set.mem b (Int_map.find a reach) && chain rest
              | _ -> true
            in
            chain order
          in
          if total then (Int_map.add s order acc, errs)
          else (acc, Preference_cycle s :: errs))
    (Int_map.empty, []) sources

let make ~pid ~activities ~prec ~pref =
  let prec = uniq_sorted prec and pref = uniq_sorted pref in
  let errs = validate ~pid ~activities ~prec ~pref in
  let alt_map, alt_errs = build_alt_map pref in
  match errs @ alt_errs with
  | _ :: _ as errs -> Error errs
  | [] ->
      let acts =
        List.fold_left
          (fun m (a : Activity.t) -> Int_map.add a.id.act a m)
          Int_map.empty activities
      in
      let succs_map = adjacency prec in
      let preds_map = adjacency (List.map (fun (a, b) -> (b, a)) prec) in
      let nodes = List.map fst (Int_map.bindings acts) in
      let descendants = descendants_of succs_map nodes in
      Ok { pid; acts; prec; pref; succs_map; preds_map; alt_map; descendants }

let pp_violation fmt = function
  | Duplicate_activity n -> Format.fprintf fmt "duplicate activity id %d" n
  | Wrong_process_id id -> Format.fprintf fmt "activity %a has foreign process id" Activity.pp_id id
  | Unknown_endpoint (a, b) -> Format.fprintf fmt "edge (%d, %d) has unknown endpoint" a b
  | Precedence_cycle ns ->
      Format.fprintf fmt "precedence cycle through {%a}"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") Format.pp_print_int)
        ns
  | Preference_not_sibling ((a, b), (c, d)) ->
      Format.fprintf fmt "preference relates non-sibling connectors (%d,%d) and (%d,%d)" a b c d
  | Preference_unknown_edge (a, b) -> Format.fprintf fmt "preference mentions unknown connector (%d,%d)" a b
  | Preference_cycle s -> Format.fprintf fmt "alternatives of activity %d are not totally ordered" s
  | Self_edge n -> Format.fprintf fmt "self edge on activity %d" n
  | No_activities -> Format.fprintf fmt "process has no activities"

let make_exn ~pid ~activities ~prec ~pref =
  match make ~pid ~activities ~prec ~pref with
  | Ok p -> p
  | Error errs ->
      invalid_arg
        (Format.asprintf "Process.make_exn: %a"
           (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_violation)
           errs)

let pid p = p.pid
let activities p = List.map snd (Int_map.bindings p.acts)
let activity_ids p = List.map fst (Int_map.bindings p.acts)
let size p = Int_map.cardinal p.acts
let find p n = Int_map.find n p.acts
let find_opt p n = Int_map.find_opt n p.acts
let mem p n = Int_map.mem n p.acts
let prec_edges p = p.prec
let pref_pairs p = p.pref
let succs p n = Option.value ~default:[] (Int_map.find_opt n p.succs_map)
let preds p n = Option.value ~default:[] (Int_map.find_opt n p.preds_map)

let before p a b =
  match Int_map.find_opt a p.descendants with
  | None -> false
  | Some d -> Int_set.mem b d

let roots p = List.filter (fun n -> preds p n = []) (activity_ids p)
let alternatives p n = Option.value ~default:[] (Int_map.find_opt n p.alt_map)

let unconditional_succs p n =
  let alts = alternatives p n in
  List.filter (fun m -> not (List.mem m alts)) (succs p n)

let choice_points p =
  List.filter (fun n -> List.length (alternatives p n) >= 2) (activity_ids p)

let non_compensatable_ids p =
  List.filter (fun n -> Activity.non_compensatable (find p n)) (activity_ids p)

(* Activities on the plan where every choice resolves to its most-preferred
   alternative, in topological order. *)
let preferred_path p =
  let rec grow frontier seen =
    match frontier with
    | [] -> seen
    | n :: rest ->
        if Int_set.mem n seen then grow rest seen
        else
          let seen = Int_set.add n seen in
          let next =
            match alternatives p n with
            | [] -> succs p n
            | first :: _ -> first :: unconditional_succs p n
          in
          grow (next @ rest) seen
  in
  let chosen = grow (roots p) Int_set.empty in
  match topo_sort (activity_ids p) p.prec with
  | Error _ -> assert false (* validated acyclic *)
  | Ok order -> List.filter (fun n -> Int_set.mem n chosen) order

let state_determining p =
  List.find_opt (fun n -> Activity.non_compensatable (find p n)) (preferred_path p)

let equal p q =
  p.pid = q.pid
  && Int_map.equal Activity.equal p.acts q.acts
  && p.prec = q.prec && p.pref = q.pref

let pp fmt p =
  let pp_sep fmt () = Format.fprintf fmt ", " in
  Format.fprintf fmt "@[<v>P_%d:@ activities: %a@ prec: %a@ pref: %a@]" p.pid
    (Format.pp_print_list ~pp_sep Activity.pp)
    (activities p)
    (Format.pp_print_list ~pp_sep (fun fmt (a, b) -> Format.fprintf fmt "%d<<%d" a b))
    p.prec
    (Format.pp_print_list ~pp_sep (fun fmt ((a, b), (c, d)) ->
         Format.fprintf fmt "(%d<<%d)<|(%d<<%d)" a b c d))
    p.pref

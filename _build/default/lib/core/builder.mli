(** A combinator interface for constructing transactional processes.

    Fragments compose into tree-shaped processes — the shape covered by
    the structural well-formedness rule: sequences of steps, terminal
    preference-ordered alternatives, and terminal parallel (unconditional)
    branches.  Activity ids are assigned in construction order.

    {[
      let booking =
        Builder.(
          build ~pid:1
            (seq
               [
                 step ~service:"book_flight" Compensatable;
                 alternatives
                   [
                     seq [ step ~service:"hotel_a" Compensatable;
                           step ~service:"pay" Pivot;
                           step ~service:"confirm" Retriable ];
                     seq [ step ~service:"hotel_b" Compensatable;
                           step ~service:"pay" Pivot;
                           step ~service:"confirm" Retriable ];
                   ];
               ]))
    ]} *)

type t
(** A process fragment. *)

val step : ?subsystem:string -> service:string -> Activity.kind -> t
(** A single activity.  [subsystem] defaults to ["default"]. *)

val seq : t list -> t
(** Sequential composition.  {!alternatives} and {!parallel} fragments may
    only appear in the last position (the tree shape has no joins). *)

val alternatives : t list -> t
(** Preference-ordered alternative branches (first = most preferred),
    attached to the preceding step of the enclosing sequence. *)

val parallel : t list -> t
(** Unconditional parallel branches, attached to the preceding step. *)

type error =
  | Empty_fragment
  | Branch_without_anchor  (** alternatives/parallel with no preceding step *)
  | Branch_not_terminal  (** something follows a branching fragment *)

val build : pid:int -> t -> (Process.t, error) result
val build_exn : pid:int -> t -> Process.t
(** @raise Invalid_argument on a malformed fragment. *)

val pp_error : Format.formatter -> error -> unit

(** Operational semantics of a single transactional process.

    The engine drives one process instance step by step: activities are
    invoked (committing or failing in the underlying subsystem), failures
    trigger backtracking to the next alternative of the nearest viable
    choice point (compensating the abandoned branch), and aborts execute
    the completion [C(P)] of the paper — full backward recovery in
    [B-REC], local backward recovery plus the retriable-only
    lowest-priority alternative in [F-REC].

    The state is immutable: every step returns a new state, which makes
    exhaustive enumeration of executions and property testing cheap. *)

type step =
  | Invoked of Activity.t  (** invocation that committed in its subsystem *)
  | Attempt_failed of Activity.t  (** invocation that terminated aborting (effect-free) *)
  | Compensated of Activity.t  (** the inverse activity was executed *)

type outcome =
  | Committed  (** some valid execution path completed (incl. via completion) *)
  | Aborted  (** full backward recovery: the process left no effects *)

type status =
  | Running
  | Finished of outcome

(** Recovery state of the process (paper, Section 3.1). *)
type recovery_state =
  | B_rec  (** backward-recoverable: no non-compensatable activity committed *)
  | F_rec  (** forward-recoverable: a state-determining activity committed *)

type t

exception Stuck of string
(** Raised when recovery is impossible: a non-compensatable activity
    committed but no retriable-only alternative leads to termination.
    Never raised for processes with guaranteed termination. *)

val start : Process.t -> t
val proc : t -> Process.t
val status : t -> status
val recovery_state : t -> recovery_state

val enabled : t -> int list
(** Activities invocable now: on the current plan, not yet executed, all
    plan-predecessors committed.  Empty when finished. *)

val executed : t -> int list
(** Currently committed (and not compensated) activities, in execution
    order. *)

val exec : t -> int -> t
(** [exec s n]: invocation of activity [n] committed.
    @raise Invalid_argument if [n] is not enabled. *)

val fail : t -> int -> t
(** [fail s n]: invocation of activity [n] terminated aborting.  For a
    retriable activity this only records the attempt ([n] stays enabled).
    For others the engine backtracks: it compensates the abandoned branch
    and switches the nearest viable choice point to its next alternative,
    or performs full backward recovery when the process is in [B-REC]
    with no alternative left.
    @raise Invalid_argument if [n] is not enabled.
    @raise Stuck if the process has no guaranteed termination. *)

val can_commit : t -> bool
(** The current plan is fully executed. *)

val commit : t -> t
(** Finish with {!Committed}. @raise Invalid_argument if not {!can_commit}. *)

val abort : t -> t
(** Scheduler-initiated abort [A_i]: executes the completion.  In [B-REC]
    the process finishes {!Aborted}; in [F-REC] it finishes {!Committed}
    through the lowest-priority retriable path (paper, Section 3.1).
    @raise Invalid_argument if already finished.
    @raise Stuck if the process has no guaranteed termination. *)

val completion : t -> Activity.instance list
(** [C(P)] from the current state, without applying it: the activities an
    abort would execute, in order (paper, Section 3.1 and Example 2). *)

val replay_instance : t -> Activity.instance -> (t, string) result
(** Replays one observed schedule occurrence against the state.
    [Forward a] commits [a], switching an exhausted choice point to the
    alternative that makes [a] invocable when needed (this reconstructs
    branch switches, whose triggering failures are effect-free and hence
    absent from schedules).  [Inverse a] compensates [a], legal only if
    [a] is the process's most recently executed activity (compensation is
    applied in reverse order, cf. Lemma 2).  Errors on illegal
    occurrences. *)

val trace : t -> step list
(** All steps so far, chronological. *)

val effective_trace : t -> Activity.instance list
(** The trace restricted to effectful steps: committed invocations and
    compensations, chronological. *)

val state_determining_executed : t -> int option
(** The most recently committed non-compensatable activity, if any (the
    current local state-determining element [s_{i_k}]). *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit

val valid_executions : ?max_states:int -> Process.t -> Activity.instance list list
(** All distinct non-empty effective traces of terminal executions,
    obtained by exhaustively branching every enabled activity into
    commit/fail (failures only for non-retriable activities, cf.
    Definitions 3–4).  Sorted; deduplicated.  Exploration stops after
    [max_states] (default [100_000]) states.
    @raise Stuck if the process has no guaranteed termination. *)

type t =
  | Step of {
      service : string;
      kind : Activity.kind;
      subsystem : string;
    }
  | Seq of t list
  | Alt of t list
  | Par of t list

type error =
  | Empty_fragment
  | Branch_without_anchor
  | Branch_not_terminal

let pp_error fmt = function
  | Empty_fragment -> Format.pp_print_string fmt "empty fragment"
  | Branch_without_anchor ->
      Format.pp_print_string fmt "alternatives/parallel fragment has no preceding step"
  | Branch_not_terminal ->
      Format.pp_print_string fmt "a branching fragment must terminate its sequence"

let step ?(subsystem = "default") ~service kind = Step { service; kind; subsystem }
let seq items = Seq items
let alternatives branches = Alt branches
let parallel branches = Par branches

let build ~pid frag =
  let counter = ref 0 in
  let acts = ref [] and prec = ref [] and pref = ref [] in
  let fresh service kind subsystem =
    incr counter;
    acts := Activity.make ~proc:pid ~act:!counter ~service ~kind ~subsystem () :: !acts;
    !counter
  in
  let link parent n =
    match parent with
    | Some p -> prec := (p, n) :: !prec
    | None -> ()
  in
  let ( let* ) = Result.bind in
  (* returns (first activity of the fragment, exit activity if the fragment
     can be continued) *)
  let rec go parent = function
    | Step { service; kind; subsystem } ->
        let n = fresh service kind subsystem in
        link parent n;
        Ok (Some n, Some n)
    | Seq [] -> Error Empty_fragment
    | Seq items ->
        let rec walk parent first = function
          | [] -> Ok (first, parent)
          | item :: rest ->
              let* item_first, exit_ = go parent item in
              let first = if first = None then item_first else first in
              if exit_ = None && rest <> [] then Error Branch_not_terminal
              else walk exit_ first rest
        in
        walk parent None items
    | Alt branches -> (
        match parent with
        | None -> Error Branch_without_anchor
        | Some p ->
            let* heads =
              List.fold_left
                (fun acc branch ->
                  let* heads = acc in
                  let* head, _exit = go parent branch in
                  match head with
                  | None -> Error Branch_without_anchor
                  | Some h -> Ok (h :: heads))
                (Ok []) branches
            in
            let heads = List.rev heads in
            (match heads with
            | [] -> Error Empty_fragment
            | _ :: _ ->
                let rec chain = function
                  | a :: (b :: _ as rest) ->
                      pref := ((p, a), (p, b)) :: !pref;
                      chain rest
                  | [ _ ] | [] -> ()
                in
                chain heads;
                Ok (Some (List.hd heads), None)))
    | Par branches -> (
        match parent with
        | None -> Error Branch_without_anchor
        | Some _ ->
            let* heads =
              List.fold_left
                (fun acc branch ->
                  let* heads = acc in
                  let* head, _exit = go parent branch in
                  match head with
                  | None -> Error Branch_without_anchor
                  | Some h -> Ok (h :: heads))
                (Ok []) branches
            in
            (match heads with
            | [] -> Error Empty_fragment
            | last :: _ -> Ok (Some last, None)))
  in
  let* _first, _exit = go None frag in
  match List.rev !acts with
  | [] -> Error Empty_fragment
  | activities -> (
      match Process.make ~pid ~activities ~prec:!prec ~pref:!pref with
      | Ok p -> Ok p
      | Error _ -> Error Empty_fragment (* unreachable for tree construction *))

let build_exn ~pid frag =
  match build ~pid frag with
  | Ok p -> p
  | Error e -> invalid_arg (Format.asprintf "Builder.build_exn: %a" pp_error e)

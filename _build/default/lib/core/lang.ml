type document = {
  spec : Conflict.t;
  processes : Process.t list;
  schedule : Schedule.t option;
}

type error = {
  line : int;
  message : string;
}

let pp_error fmt { line; message } = Format.fprintf fmt "line %d: %s" line message

exception Parse_error of error

let fail line message = raise (Parse_error { line; message })

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line
  |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let int_of ln tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> fail ln (Printf.sprintf "expected an integer, got %S" tok)

let kind_of ln = function
  | "compensatable" | "c" -> Activity.Compensatable
  | "pivot" | "p" -> Activity.Pivot
  | "retriable" | "r" -> Activity.Retriable
  | tok -> fail ln (Printf.sprintf "unknown activity kind %S" tok)

(* "(a -> b) < (a -> c)" after tokenization can carry parentheses glued to
   numbers; normalize by stripping them *)
let strip_parens tok =
  let drop c = c = '(' || c = ')' in
  let n = String.length tok in
  let start = if n > 0 && drop tok.[0] then 1 else 0 in
  let stop = if n > start && drop tok.[n - 1] then n - 1 else n in
  String.sub tok start (stop - start)

type proc_acc = {
  mutable acts : Activity.t list;
  mutable prec : Process.edge list;
  mutable pref : (Process.edge * Process.edge) list;
}

type sched_event_acc =
  | Ev of Schedule.event
  | Ev_act of {
      pid : int;
      act : int;
      inverse : bool;
    }

let parse text =
  let lines = String.split_on_char '\n' text in
  let spec = ref Conflict.empty in
  let processes = ref [] in
  let sched_events = ref [] in
  let saw_schedule = ref false in
  let state = ref `Top in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      match (tokens line, !state) with
      | [], _ -> ()
      | [ "conflict"; s; s' ], `Top -> spec := Conflict.add s s' !spec
      | [ "effect_free"; s ], `Top -> spec := Conflict.declare_effect_free s !spec
      | [ "process"; pid; "{" ], `Top ->
          state := `Process (int_of ln pid, { acts = []; prec = []; pref = [] })
      | [ "schedule"; "{" ], `Top ->
          if !saw_schedule then fail ln "duplicate schedule block";
          saw_schedule := true;
          state := `Schedule
      | toks, `Top ->
          fail ln (Printf.sprintf "unexpected %S at top level" (String.concat " " toks))
      | [ "}" ], `Process (pid, acc) ->
          (match
             Process.make ~pid ~activities:(List.rev acc.acts) ~prec:acc.prec ~pref:acc.pref
           with
          | Ok p -> processes := p :: !processes
          | Error errs ->
              fail ln
                (Format.asprintf "invalid process %d: %a" pid
                   (Format.pp_print_list
                      ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
                      Process.pp_violation)
                   errs));
          state := `Top
      | [ a; "->"; b ], `Process (_, acc) ->
          acc.prec <- (int_of ln a, int_of ln b) :: acc.prec
      | [ a1; "->"; b1; "<"; a2; "->"; b2 ], `Process (_, acc) ->
          let e tok = int_of ln (strip_parens tok) in
          acc.pref <- ((e a1, e b1), (e a2, e b2)) :: acc.pref
      | id :: service :: kind :: rest, `Process (pid, acc) ->
          let subsystem =
            match rest with
            | [] -> "default"
            | [ s ] when String.length s > 1 && s.[0] = '@' ->
                String.sub s 1 (String.length s - 1)
            | _ -> fail ln "expected at most a @subsystem after the activity kind"
          in
          acc.acts <-
            Activity.make ~proc:pid ~act:(int_of ln id) ~service ~kind:(kind_of ln kind)
              ~subsystem ()
            :: acc.acts
      | toks, `Process _ ->
          fail ln (Printf.sprintf "unexpected %S in a process block" (String.concat " " toks))
      | [ "}" ], `Schedule -> state := `Top
      | [ "act"; pid; act ], `Schedule ->
          sched_events :=
            Ev_act { pid = int_of ln pid; act = int_of ln act; inverse = false }
            :: !sched_events
      | [ "comp"; pid; act ], `Schedule ->
          sched_events :=
            Ev_act { pid = int_of ln pid; act = int_of ln act; inverse = true }
            :: !sched_events
      | [ "commit"; pid ], `Schedule ->
          sched_events := Ev (Schedule.Commit (int_of ln pid)) :: !sched_events
      | [ "abort"; pid ], `Schedule ->
          sched_events := Ev (Schedule.Abort (int_of ln pid)) :: !sched_events
      | "groupabort" :: pids, `Schedule ->
          sched_events := Ev (Schedule.Group_abort (List.map (int_of ln) pids)) :: !sched_events
      | toks, `Schedule ->
          fail ln (Printf.sprintf "unexpected %S in the schedule block" (String.concat " " toks)))
    lines;
  (match !state with
  | `Top -> ()
  | `Process _ | `Schedule -> fail (List.length lines) "unterminated block");
  let processes = List.rev !processes in
  let schedule =
    if not !saw_schedule then None
    else begin
      let find_proc pid =
        match List.find_opt (fun p -> Process.pid p = pid) processes with
        | Some p -> p
        | None -> fail 0 (Printf.sprintf "schedule refers to unknown process %d" pid)
      in
      let events =
        List.rev_map
          (function
            | Ev ev -> ev
            | Ev_act { pid; act; inverse } -> (
                let p = find_proc pid in
                match Process.find_opt p act with
                | None ->
                    fail 0 (Printf.sprintf "schedule refers to unknown activity a_{%d_%d}" pid act)
                | Some a ->
                    Schedule.Act (if inverse then Activity.Inverse a else Activity.Forward a)))
          !sched_events
      in
      match Schedule.make ~spec:!spec ~procs:processes events with
      | s -> Some s
      | exception Invalid_argument m -> fail 0 m
    end
  in
  { spec = !spec; processes; schedule }

let parse text = try Ok (parse text) with Parse_error e -> Error e

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print doc =
  let b = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter (fun (s, s') -> bpf "conflict %s %s\n" s s') (Conflict.pairs doc.spec);
  List.iter (fun s -> bpf "effect_free %s\n" s) (Conflict.effect_free_services doc.spec);
  List.iter
    (fun p ->
      bpf "\nprocess %d {\n" (Process.pid p);
      List.iter
        (fun (a : Activity.t) ->
          bpf "  %d %s %s @%s\n" a.Activity.id.Activity.act a.Activity.service
            (match a.Activity.kind with
            | Activity.Compensatable -> "compensatable"
            | Activity.Pivot -> "pivot"
            | Activity.Retriable -> "retriable")
            a.Activity.subsystem)
        (Process.activities p);
      List.iter (fun (x, y) -> bpf "  %d -> %d\n" x y) (Process.prec_edges p);
      List.iter
        (fun ((a1, b1), (a2, b2)) -> bpf "  (%d -> %d) < (%d -> %d)\n" a1 b1 a2 b2)
        (Process.pref_pairs p);
      bpf "}\n")
    doc.processes;
  (match doc.schedule with
  | None -> ()
  | Some s ->
      bpf "\nschedule {\n";
      List.iter
        (fun ev ->
          match ev with
          | Schedule.Act inst ->
              let id = Activity.instance_id inst in
              bpf "  %s %d %d\n"
                (if Activity.is_inverse inst then "comp" else "act")
                id.Activity.proc id.Activity.act
          | Schedule.Commit pid -> bpf "  commit %d\n" pid
          | Schedule.Abort pid -> bpf "  abort %d\n" pid
          | Schedule.Group_abort pids ->
              bpf "  groupabort %s\n" (String.concat " " (List.map string_of_int pids)))
        (Schedule.events s);
      bpf "}\n");
  Buffer.contents b

let buf_add = Buffer.add_string

let shape_of (a : Activity.t) =
  match a.Activity.kind with
  | Activity.Pivot -> "box"
  | Activity.Compensatable -> "ellipse"
  | Activity.Retriable -> "doublecircle"

let node_id (a : Activity.t) = Printf.sprintf "a_%d_%d" a.Activity.id.Activity.proc a.Activity.id.Activity.act

let process p =
  let b = Buffer.create 512 in
  buf_add b (Printf.sprintf "digraph P%d {\n  rankdir=LR;\n" (Process.pid p));
  List.iter
    (fun (a : Activity.t) ->
      buf_add b
        (Printf.sprintf "  %s [label=\"%s\\n%s\" shape=%s];\n" (node_id a)
           (Activity.to_string a) a.Activity.service (shape_of a)))
    (Process.activities p);
  List.iter
    (fun (x, y) ->
      buf_add b
        (Printf.sprintf "  %s -> %s;\n" (node_id (Process.find p x)) (node_id (Process.find p y))))
    (Process.prec_edges p);
  List.iter
    (fun (((_, d1) : Process.edge), ((_, d2) : Process.edge)) ->
      buf_add b
        (Printf.sprintf "  %s -> %s [style=dashed constraint=false label=\"<|\"];\n"
           (node_id (Process.find p d1))
           (node_id (Process.find p d2))))
    (Process.pref_pairs p);
  buf_add b "}\n";
  Buffer.contents b

let occurrence_id i inst =
  let a = Activity.instance_base inst in
  Printf.sprintf "o%d_a_%d_%d%s" i a.Activity.id.Activity.proc a.Activity.id.Activity.act
    (if Activity.is_inverse inst then "_inv" else "")

let schedule s =
  let b = Buffer.create 1024 in
  buf_add b "digraph schedule {\n  rankdir=LR;\n";
  let occurrences = List.mapi (fun i inst -> (i, inst)) (Schedule.activities s) in
  (* cluster per process *)
  List.iter
    (fun pid ->
      buf_add b (Printf.sprintf "  subgraph cluster_%d {\n    label=\"P%d\";\n" pid pid);
      List.iter
        (fun (i, inst) ->
          if Activity.instance_proc inst = pid then
            buf_add b
              (Printf.sprintf "    %s [label=\"%s\"];\n" (occurrence_id i inst)
                 (Activity.instance_to_string inst)))
        occurrences;
      (* intra-process sequence arrows *)
      let mine = List.filter (fun (_, inst) -> Activity.instance_proc inst = pid) occurrences in
      let rec chain = function
        | (i, x) :: ((j, y) :: _ as rest) ->
            buf_add b
              (Printf.sprintf "    %s -> %s;\n" (occurrence_id i x) (occurrence_id j y));
            chain rest
        | [ _ ] | [] -> ()
      in
      chain mine;
      buf_add b "  }\n")
    (Schedule.proc_ids s);
  (* conflict arrows *)
  let spec = Schedule.spec s in
  let rec conflicts = function
    | [] -> ()
    | (i, x) :: rest ->
        List.iter
          (fun (j, y) ->
            if
              Activity.instance_proc x <> Activity.instance_proc y
              && Conflict.conflicts spec x y
            then
              buf_add b
                (Printf.sprintf "  %s -> %s [style=dotted constraint=false color=red];\n"
                   (occurrence_id i x) (occurrence_id j y)))
          rest;
        conflicts rest
  in
  conflicts occurrences;
  buf_add b "}\n";
  Buffer.contents b

let conflict_graph s =
  let b = Buffer.create 256 in
  buf_add b "digraph conflicts {\n";
  let g = Schedule.conflict_graph s in
  List.iter (fun n -> buf_add b (Printf.sprintf "  P%d;\n" n)) (Digraph.nodes g);
  List.iter
    (fun (i, j) -> buf_add b (Printf.sprintf "  P%d -> P%d;\n" i j))
    (Digraph.edges g);
  buf_add b "}\n";
  Buffer.contents b

module Int_set = Set.Make (Int)

type issue =
  | Not_tree of int
  | Unsafe_activity of int
  | Unsafe_parallel_branch of int
  | Mixed_successors of int

let pp_issue fmt = function
  | Not_tree n -> Format.fprintf fmt "activity %d has several predecessors" n
  | Unsafe_activity n -> Format.fprintf fmt "activity %d can fail without recovery option" n
  | Unsafe_parallel_branch n ->
      Format.fprintf fmt "parallel branch at %d mixes termination guarantees" n
  | Mixed_successors n ->
      Format.fprintf fmt "activity %d mixes alternatives and unconditional successors" n

let subtree_ids p n =
  let rec grow acc n =
    List.fold_left grow (Int_set.add n acc) (Process.succs p n)
  in
  grow Int_set.empty n

let uniform_branch p abortable root =
  let ids = Int_set.elements (subtree_ids p root) in
  let all kindp = List.for_all (fun n -> kindp (Process.find p n)) ids in
  all Activity.retriable || (abortable && all Activity.compensatable)

(* Recursive well-formed-flex rule on a tree. [abortable] is true while a
   failure can still be absorbed by backward recovery or an enclosing
   alternative. *)
let rec wf p n abortable =
  let a = Process.find p n in
  let self = if (not (Activity.retriable a)) && not abortable then [ Unsafe_activity n ] else [] in
  let abortable' = abortable && Activity.compensatable a in
  let alts = Process.alternatives p n and unc = Process.unconditional_succs p n in
  self
  @
  match (alts, unc) with
  | [], [] -> []
  | [], [ child ] -> wf p child abortable'
  | [], children ->
      List.concat_map
        (fun c -> if uniform_branch p abortable' c then wf p c abortable' else [ Unsafe_parallel_branch c ])
        children
  | _ :: _, _ :: _ -> [ Mixed_successors n ]
  | alts, [] ->
      let rec split acc = function
        | [] -> (List.rev acc, [])
        | [ last ] -> (List.rev acc, [ last ])
        | x :: rest -> split (x :: acc) rest
      in
      let non_last, last = split [] alts in
      List.concat_map (fun b -> wf p b true) non_last
      @ List.concat_map (fun b -> wf p b abortable') last

let well_formed p =
  let tree_issues =
    List.filter_map
      (fun n -> if List.length (Process.preds p n) > 1 then Some (Not_tree n) else None)
      (Process.activity_ids p)
  in
  let issues =
    if tree_issues <> [] then tree_issues
    else
      match Process.roots p with
      | [ root ] -> wf p root true
      | roots ->
          List.concat_map
            (fun r -> if uniform_branch p true r then wf p r true else [ Unsafe_parallel_branch r ])
            roots
  in
  match issues with
  | [] -> Ok ()
  | issues -> Error issues

let run_scenario p fails =
  let rec loop s steps =
    if steps > 10_000 then false
    else if Execution.can_commit s then true
    else
      match Execution.enabled s with
      | [] -> ( match Execution.status s with Execution.Finished _ -> true | Execution.Running -> false)
      | n :: _ -> (
          if Int_set.mem n fails then
            match Execution.fail s n with
            | exception Execution.Stuck _ -> false
            | s' -> (
                match Execution.status s' with
                | Execution.Finished _ -> true
                | Execution.Running -> loop s' (steps + 1))
          else loop (Execution.exec s n) (steps + 1))
  in
  loop (Execution.start p) 0

let guaranteed_termination ?(max_exhaustive = 12) ?(samples = 2048) ?(seed = 42) p =
  let candidates =
    List.filter (fun n -> not (Activity.retriable (Process.find p n))) (Process.activity_ids p)
  in
  let k = List.length candidates in
  if k <= max_exhaustive then begin
    let arr = Array.of_list candidates in
    let rec all_subsets mask =
      if mask >= 1 lsl k then true
      else
        let fails =
          Array.to_list arr
          |> List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
          |> Int_set.of_list
        in
        run_scenario p fails && all_subsets (mask + 1)
    in
    all_subsets 0
  end
  else begin
    let rng = Random.State.make [| seed |] in
    let rec sample i =
      if i >= samples then true
      else
        let fails =
          List.filter (fun _ -> Random.State.bool rng) candidates |> Int_set.of_list
        in
        run_scenario p fails && sample (i + 1)
    in
    sample 0
  end

(** Reducibility of completed process schedules (paper, Definition 9).

    A schedule is reducible (RED) if its completed schedule can be turned
    into a serial one by finitely many applications of the commutativity
    rule (swap adjacent non-conflicting activities), the compensation rule
    (drop an adjacent pair [a, a^{-1}]), and the effect-free rule (drop
    effect-free activities of processes that do not commit in the original
    schedule).

    Two checkers are provided: a polynomial one based on the classical
    characterization (cancel compensation pairs to a fixpoint — a pair
    cancels iff no activity conflicting with it lies between the two
    occurrences — then test conflict-serializability of the remainder),
    and an explicit-rewrite search used to cross-validate the fast checker
    on small schedules. *)

val remove_effect_free : original:Schedule.t -> Schedule.t -> Schedule.t
(** Drops activity occurrences whose service is declared effect-free and
    whose process does not commit in [original] (rule 3). *)

val cancel_compensation_pairs : Schedule.t -> Schedule.t
(** Applies rules 1+2 to a fixpoint: repeatedly removes pairs
    [(Forward a, Inverse a)] with no conflicting occurrence in between. *)

val reduce : original:Schedule.t -> Schedule.t -> Schedule.t
(** Effect-free removal followed by pair cancellation. *)

val reducible : original:Schedule.t -> Schedule.t -> bool
(** The reduced schedule is conflict-serializable, i.e. the completed
    schedule can be transformed into a serial one. *)

val reducible_by_search : ?max_steps:int -> original:Schedule.t -> Schedule.t -> bool option
(** Ground-truth rewrite search applying Definition 9 literally.  Explores
    at most [max_steps] (default [200_000]) states; [None] when the bound
    is hit without an answer. *)

(** Graphviz (DOT) export for processes and schedules — solid arrows for
    the precedence order, dashed arrows for preference (alternatives),
    and, for schedules, dotted arrows for inter-process conflicts, in the
    style of the paper's figures. *)

val process : Process.t -> string
(** One node per activity, labelled [a_{i_k}^g]; pivots drawn as boxes,
    compensatable activities as ellipses, retriables as double circles. *)

val schedule : Schedule.t -> string
(** Activity occurrences in schedule order, grouped per process, with
    conflict arrows between them. *)

val conflict_graph : Schedule.t -> string
(** The process-level serialization graph. *)

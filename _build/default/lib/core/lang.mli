(** A small line-oriented textual format for process definitions, conflict
    specifications and schedules, so that tooling (the [tpm] CLI) can
    check documents without writing OCaml.

    {v
    # conflicts are symmetric; effect_free marks read-only services
    conflict pdm_entry read_bom
    effect_free read_bom

    process 1 {
      1 design      compensatable @cad
      2 pdm_entry   compensatable @pdm
      3 test        pivot         @testdb
      4 tech_doc    retriable     @docrepo
      5 doc_drawing retriable     @docrepo
      1 -> 2
      2 -> 3
      3 -> 4
      1 -> 5
      (1 -> 2) < (1 -> 5)
    }

    schedule {
      act 1 1        # forward occurrence of a_{1_1}
      comp 1 1       # compensation a_{1_1}^-1
      commit 1
      abort 2
      groupabort 1 2
    }
    v} *)

type document = {
  spec : Conflict.t;
  processes : Process.t list;
  schedule : Schedule.t option;
      (** present when the document contains a [schedule] block; built
          over the document's processes and conflict specification *)
}

type error = {
  line : int;  (** 1-based *)
  message : string;
}

val parse : string -> (document, error) result
val parse_file : string -> (document, error) result

val print : document -> string
(** Prints a document that {!parse} reads back equivalently. *)

val pp_error : Format.formatter -> error -> unit

lib/core/conflict.ml: Activity Format List Set Stdlib String

lib/core/schedule.ml: Activity Conflict Digraph Execution Format Hashtbl Int List Map Printf Process Result

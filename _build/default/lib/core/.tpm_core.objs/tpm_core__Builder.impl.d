lib/core/builder.ml: Activity Format List Process Result

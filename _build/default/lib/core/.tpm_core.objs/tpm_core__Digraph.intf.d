lib/core/digraph.mli:

lib/core/reduction.mli: Schedule

lib/core/criteria.ml: Activity Completed Conflict Digraph List Process Reduction Schedule

lib/core/flex.mli: Format Process

lib/core/builder.mli: Activity Format Process

lib/core/lang.mli: Conflict Format Process Schedule

lib/core/conflict.mli: Activity Format

lib/core/flex.ml: Activity Array Execution Format Int List Process Random Set

lib/core/reduction.ml: Activity Array Conflict Digraph Hashtbl List Option Schedule

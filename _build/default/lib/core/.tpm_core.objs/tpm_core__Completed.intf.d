lib/core/completed.mli: Activity Schedule

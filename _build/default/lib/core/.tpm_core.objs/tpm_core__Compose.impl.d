lib/core/compose.ml: Activity Flex Format List Process

lib/core/digraph.ml: Hashtbl Int List Map Option Set

lib/core/process.mli: Activity Format

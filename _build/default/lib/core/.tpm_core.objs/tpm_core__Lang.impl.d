lib/core/lang.ml: Activity Buffer Conflict Format List Printf Process Schedule String

lib/core/completed.ml: Activity Array Conflict Digraph Execution Fun Hashtbl List Option Printf Schedule

lib/core/activity.mli: Format

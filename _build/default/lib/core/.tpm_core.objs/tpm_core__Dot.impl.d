lib/core/dot.ml: Activity Buffer Conflict Digraph List Printf Process Schedule

lib/core/compose.mli: Activity Flex Format Process

lib/core/criteria.mli: Schedule

lib/core/dot.mli: Process Schedule

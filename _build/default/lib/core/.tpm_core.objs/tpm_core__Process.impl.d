lib/core/process.ml: Activity Format Int List Map Option Set

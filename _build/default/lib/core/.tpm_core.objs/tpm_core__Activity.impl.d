lib/core/activity.ml: Format Stdlib

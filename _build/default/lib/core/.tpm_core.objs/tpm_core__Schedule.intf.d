lib/core/schedule.mli: Activity Conflict Digraph Execution Format Process

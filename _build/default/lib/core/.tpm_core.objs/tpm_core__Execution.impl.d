lib/core/execution.ml: Activity Format Fun Int List Map Option Printf Process Set

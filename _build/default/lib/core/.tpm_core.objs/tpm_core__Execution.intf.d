lib/core/execution.mli: Activity Format Process

(** Minimal directed-graph utilities over integer nodes, used for
    precedence closures, conflict graphs and serializability checks. *)

type t

val make : nodes:int list -> edges:(int * int) list -> t
(** Self-edges are dropped; endpoints are added to the node set. *)

val nodes : t -> int list
val edges : t -> (int * int) list
val succs : t -> int -> int list

val has_cycle : t -> bool

val find_cycle : t -> int list option
(** A cycle as a node list [n1; ...; nk] with edges n1->n2->...->nk->n1. *)

val topo_sort : t -> int list option
(** [None] if cyclic. *)

val reachable : t -> int -> int -> bool
(** [reachable g a b] iff a non-empty path leads from [a] to [b]. *)

val transitive_closure : t -> (int * int) list

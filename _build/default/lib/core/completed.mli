(** Completed process schedules (paper, Definition 8).

    The completed schedule [S̃] of a schedule [S] makes all recovery-related
    activities explicit: every abort event [A_i] is replaced by the
    activities of the completion [C(P_i)] followed by [C_i]; all still
    active processes are aborted jointly by a group abort appended at the
    end of [S], again followed by their completions and commits.

    Unlike the expanded schedule of the traditional unified theory, a
    completion may contain {e new forward activities} (the retriable
    lowest-priority alternative of processes in [F-REC]), which can
    introduce conflicts not present in [S] — this is why correctness of
    transactional processes must always be judged on [S̃] (paper,
    Section 3.5). *)

val completion_order :
  Schedule.t -> (int * Activity.instance list) list -> Activity.instance list
(** [completion_order s completions] linearizes the completion activities
    of several jointly aborted processes, honouring Definition 8 (3d–f):
    per-process internal order; conflicting compensating activities in
    reverse order of their originals in [s] (Lemma 2); compensating
    activities before conflicting non-compensatable ones (Lemma 3);
    conflicting retriables follow the process-dependency order of [s]. *)

val of_schedule : Schedule.t -> Schedule.t
(** Builds [S̃].  The result contains no [Abort] events: every process
    terminates with [Commit].  A [Group_abort] marker precedes the jointly
    appended completions when [s] has active processes.
    @raise Invalid_argument if [s] is not a legal schedule. *)

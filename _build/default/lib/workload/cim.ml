open Tpm_core
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Value = Tpm_kv.Value
module Tx = Tpm_kv.Tx

let subsystem_names =
  [ "cad"; "pdm"; "testdb"; "docrepo"; "bizapp"; "progrepo"; "productdb" ]

let qualify service part = service ^ ":" ^ part

let part_of_service service =
  match String.index_opt service ':' with
  | Some i -> String.sub service (i + 1) (String.length service - i - 1)
  | None -> service

let args_of (a : Activity.t) = Value.Text (part_of_service a.Activity.service)

(* Service bodies: small state machines over part-qualified keys. *)
let register_part reg part =
  let q = qualify in
  let key prefix = prefix ^ ":" ^ part in
  let add = Service.Registry.register reg in
  (* CAD *)
  add
    (Service.make ~name:(q "design" part) ~compensation:Service.Snapshot_undo
       ~reads:[ key "drawing" ] ~writes:[ key "drawing" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "drawing") (Value.Text "drawing-v1");
         Value.Text "designed"));
  (* PDM: the conflicting pair of figure 1 *)
  add
    (Service.make ~name:(q "pdm_entry" part)
       ~compensation:(Service.Inverse_service (q "pdm_remove" part))
       ~writes:[ key "bom" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "bom") (Value.List [ Value.Text "steel"; Value.Text "bolts" ]);
         Value.Text "bom-created"));
  add
    (Service.make ~name:(q "pdm_remove" part) ~writes:[ key "bom" ]
       (fun tx ~args:_ ->
         Tx.delete tx (key "bom");
         Value.Text "bom-removed"));
  add
    (Service.make ~name:(q "read_bom" part) ~reads:[ key "bom" ]
       ~compensation:Service.Snapshot_undo
       (fun tx ~args:_ -> Tx.get tx (key "bom")));
  (* test database *)
  add
    (Service.make ~name:(q "test" part) ~writes:[ key "test_result" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "test_result") (Value.Text "passed");
         Value.Text "passed"));
  (* documentation repository *)
  add
    (Service.make ~name:(q "tech_doc" part) ~writes:[ key "techdoc" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "techdoc") (Value.Text "manual-v1");
         Value.Text "documented"));
  add
    (Service.make ~name:(q "doc_drawing" part) ~writes:[ key "drawing_doc" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "drawing_doc") (Value.Text "archived-for-reuse");
         Value.Text "drawing-documented"));
  (* business application *)
  add
    (Service.make ~name:(q "order_material" part)
       ~compensation:(Service.Inverse_service (q "cancel_order" part))
       ~writes:[ key "order" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "order") (Value.Text "ordered");
         Value.Text "ordered"));
  add
    (Service.make ~name:(q "cancel_order" part) ~writes:[ key "order" ]
       (fun tx ~args:_ ->
         Tx.delete tx (key "order");
         Value.Text "cancelled"));
  add
    (Service.make ~name:(q "schedule" part) ~compensation:Service.Snapshot_undo
       ~writes:[ key "slot" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "slot") (Value.Int 42);
         Value.Text "scheduled"));
  (* program repository *)
  add
    (Service.make ~name:(q "nc_program" part) ~compensation:Service.Snapshot_undo
       ~writes:[ key "nc" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "nc") (Value.Text "gcode");
         Value.Text "program-loaded"));
  (* product DBMS: production has no inverse *)
  add
    (Service.make ~name:(q "produce" part) ~writes:[ key "produced" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "produced") (Value.Int 1);
         Value.Text "produced"));
  add
    (Service.make ~name:(q "update_stock" part) ~writes:[ key "stock" ]
       (fun tx ~args:_ ->
         let current = match Tx.get tx (key "stock") with Value.Int n -> n | _ -> 0 in
         Tx.set tx (key "stock") (Value.Int (current + 1));
         Value.Int (current + 1)))

let registry ~parts =
  let reg = Service.Registry.create () in
  List.iter (register_part reg) parts;
  reg

let subsystem_of_service service =
  match String.split_on_char ':' service with
  | base :: _ -> (
      match base with
      | "design" -> "cad"
      | "pdm_entry" | "pdm_remove" | "read_bom" -> "pdm"
      | "test" -> "testdb"
      | "tech_doc" | "doc_drawing" -> "docrepo"
      | "order_material" | "cancel_order" | "schedule" -> "bizapp"
      | "nc_program" -> "progrepo"
      | "produce" | "update_stock" -> "productdb"
      | _ -> "productdb")
  | [] -> assert false

let rms ~parts ?(fail_prob = fun _ -> 0.0) ?(seed = 7) () =
  let reg = registry ~parts in
  List.mapi
    (fun i name -> Rm.create ~name ~registry:reg ~fail_prob ~seed:(seed + i) ())
    subsystem_names

let construction ~pid ~part =
  let q s = qualify s part in
  let a n service kind =
    Activity.make ~proc:pid ~act:n ~service:(q service) ~kind
      ~subsystem:(subsystem_of_service (q service)) ()
  in
  Process.make_exn ~pid
    ~activities:
      [
        a 1 "design" Activity.Compensatable;
        a 2 "pdm_entry" Activity.Compensatable;
        a 3 "test" Activity.Pivot;
        a 4 "tech_doc" Activity.Retriable;
        a 5 "doc_drawing" Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3); (3, 4); (1, 5) ]
    ~pref:[ ((1, 2), (1, 5)) ]

let production ~pid ~part =
  let q s = qualify s part in
  let a n service kind =
    Activity.make ~proc:pid ~act:n ~service:(q service) ~kind
      ~subsystem:(subsystem_of_service (q service)) ()
  in
  Process.make_exn ~pid
    ~activities:
      [
        a 1 "read_bom" Activity.Compensatable;
        a 2 "order_material" Activity.Compensatable;
        a 3 "schedule" Activity.Compensatable;
        a 4 "nc_program" Activity.Compensatable;
        a 5 "produce" Activity.Pivot;
        a 6 "update_stock" Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5); (5, 6) ]
    ~pref:[]

let spec ~parts = Service.Registry.conflict_spec (registry ~parts)

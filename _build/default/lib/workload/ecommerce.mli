(** A WISE-style business-to-business e-commerce pipeline (the paper's
    motivating application): order validation, stock reservation, payment
    (the pivot), shipping and invoicing, with a backorder alternative when
    the normal fulfilment path fails.

    Orders for the same item contend on the stock counter; orders of the
    same customer contend on the account ledger. *)

val subsystem_names : string list
(** shop, warehouse, billing, shipping. *)

val registry : items:string list -> customers:string list -> Tpm_subsys.Service.Registry.t

val rms :
  items:string list ->
  customers:string list ->
  ?fail_prob:(string -> float) ->
  ?seed:int ->
  unit ->
  Tpm_subsys.Rm.t list

val spec : items:string list -> customers:string list -> Tpm_core.Conflict.t

val order : pid:int -> item:string -> customer:string -> Tpm_core.Process.t
(** [validate^c << reserve^c << charge^p << ship^r << invoice^r] with the
    lower-priority alternative [backorder^r] branching at [validate]. *)

val args_of : Tpm_core.Activity.t -> Tpm_kv.Value.t

open Tpm_core
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Value = Tpm_kv.Value
module Tx = Tpm_kv.Tx

let subsystem_names = [ "airline"; "hotels"; "payment"; "notification" ]

let qualify service trip = service ^ ":" ^ trip

let trip_of_service service =
  match String.index_opt service ':' with
  | Some i -> String.sub service (i + 1) (String.length service - i - 1)
  | None -> service

let args_of (a : Activity.t) = Value.Text (trip_of_service a.Activity.service)

let counter tx key delta =
  let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
  Tx.set tx key (Value.Int (v + delta));
  Value.Int (v + delta)

let register_trip reg trip =
  let q s = qualify s trip in
  let key prefix = prefix ^ ":" ^ trip in
  let add = Service.Registry.register reg in
  add
    (Service.make ~name:(q "book_flight")
       ~compensation:(Service.Inverse_service (q "cancel_flight"))
       ~reads:[ key "seats" ] ~writes:[ key "seats" ]
       (fun tx ~args:_ -> counter tx (key "seats") 1));
  add
    (Service.make ~name:(q "cancel_flight") ~reads:[ key "seats" ] ~writes:[ key "seats" ]
       (fun tx ~args:_ -> counter tx (key "seats") (-1)));
  List.iter
    (fun hotel ->
      add
        (Service.make
           ~name:(q ("book_hotel_" ^ hotel))
           ~compensation:(Service.Inverse_service (q ("cancel_hotel_" ^ hotel)))
           ~reads:[ key ("rooms_" ^ hotel) ]
           ~writes:[ key ("rooms_" ^ hotel) ]
           (fun tx ~args:_ -> counter tx (key ("rooms_" ^ hotel)) 1));
      add
        (Service.make
           ~name:(q ("cancel_hotel_" ^ hotel))
           ~reads:[ key ("rooms_" ^ hotel) ]
           ~writes:[ key ("rooms_" ^ hotel) ]
           (fun tx ~args:_ -> counter tx (key ("rooms_" ^ hotel)) (-1))))
    [ "a"; "b" ];
  (* payments post to a shared per-trip ledger: they conflict *)
  add
    (Service.make ~name:(q "pay") ~reads:[ key "ledger" ] ~writes:[ key "ledger" ]
       (fun tx ~args:_ -> counter tx (key "ledger") 100));
  add
    (Service.make ~name:(q "confirm") ~writes:[ key "confirmation" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "confirmation") (Value.Text "sent");
         Value.Bool true));
  add
    (Service.make ~name:(q "notify") ~writes:[ key "notice" ]
       (fun tx ~args:_ ->
         Tx.set tx (key "notice") (Value.Text "sent");
         Value.Bool true))

let registry ~trips =
  let reg = Service.Registry.create () in
  List.iter (register_trip reg) trips;
  reg

let subsystem_of service =
  match String.split_on_char ':' service with
  | base :: _ -> (
      match base with
      | "book_flight" | "cancel_flight" -> "airline"
      | "book_hotel_a" | "book_hotel_b" | "cancel_hotel_a" | "cancel_hotel_b" -> "hotels"
      | "pay" -> "payment"
      | _ -> "notification")
  | [] -> assert false

let rms ~trips ?(fail_prob = fun _ -> 0.0) ?(seed = 9) () =
  let reg = registry ~trips in
  List.mapi
    (fun i name -> Rm.create ~name ~registry:reg ~fail_prob ~seed:(seed + i) ())
    subsystem_names

let spec ~trips = Service.Registry.conflict_spec (registry ~trips)

(* 1 book_flight^c, then alternatives:
   branch A: 2 hotel_a^c, 3 pay^p, 4 confirm^r, 5 notify^r
   branch B: 6 hotel_b^c, 7 pay^p, 8 confirm^r, 9 notify^r *)
let booking ~pid ~trip =
  let a n service kind =
    Activity.make ~proc:pid ~act:n ~service:(qualify service trip) ~kind
      ~subsystem:(subsystem_of (qualify service trip)) ()
  in
  Process.make_exn ~pid
    ~activities:
      [
        a 1 "book_flight" Activity.Compensatable;
        a 2 "book_hotel_a" Activity.Compensatable;
        a 3 "pay" Activity.Pivot;
        a 4 "confirm" Activity.Retriable;
        a 5 "notify" Activity.Retriable;
        a 6 "book_hotel_b" Activity.Compensatable;
        a 7 "pay" Activity.Pivot;
        a 8 "confirm" Activity.Retriable;
        a 9 "notify" Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5); (1, 6); (6, 7); (7, 8); (8, 9) ]
    ~pref:[ ((1, 2), (1, 6)) ]

(** The Computer-Integrated-Manufacturing scenario of the paper's figure 1:
    a construction process and a production process coordinated over six
    subsystems, conflicting on the PDM system (the bill of materials).

    The construction process designs a part (CAD), enters its BOM into the
    PDM, tests it and writes the technical documentation; if the test
    fails, the PDM entry is compensated and the CAD drawing is documented
    for later reuse instead (the alternative branch of Section 2.1).  The
    production process reads the BOM, orders material, schedules, loads
    the NC program and produces — and "no inverse for the production
    activity exists" (Section 2.2), so production must not run before the
    construction process is safe.

    Services are part-qualified ([pdm_entry:boiler-7] writes
    [bom:boiler-7]), so processes for distinct parts do not conflict. *)

val subsystem_names : string list
(** CAD, PDM, test database, documentation repository, business
    application, program repository, product DBMS. *)

val registry : parts:string list -> Tpm_subsys.Service.Registry.t
(** All services of both process families, for every given part. *)

val rms :
  parts:string list ->
  ?fail_prob:(string -> float) ->
  ?seed:int ->
  unit ->
  Tpm_subsys.Rm.t list
(** One resource manager per subsystem, all sharing one registry. *)

val construction : pid:int -> part:string -> Tpm_core.Process.t
(** [design^c << pdm_entry^c << test^p << tech_doc^r] with the
    lower-priority alternative [doc_drawing^r] branching at [design]. *)

val production : pid:int -> part:string -> Tpm_core.Process.t
(** [read_bom^c << order_material^c << schedule^c << nc_program^c <<
    produce^p << update_stock^r]. *)

val spec : parts:string list -> Tpm_core.Conflict.t
(** Conflict relation derived from the service footprints. *)

val args_of : Tpm_core.Activity.t -> Tpm_kv.Value.t
(** Invocation arguments: the part name, parsed from the service name. *)

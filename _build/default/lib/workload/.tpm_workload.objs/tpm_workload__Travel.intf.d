lib/workload/travel.mli: Tpm_core Tpm_kv Tpm_subsys

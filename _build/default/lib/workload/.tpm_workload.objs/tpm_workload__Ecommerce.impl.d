lib/workload/ecommerce.ml: Activity List Process String Tpm_core Tpm_kv Tpm_subsys

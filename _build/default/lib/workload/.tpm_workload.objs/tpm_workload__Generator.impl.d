lib/workload/generator.ml: Activity Array Conflict List Option Printf Process Tpm_core Tpm_kv Tpm_sim Tpm_subsys

lib/workload/ecommerce.mli: Tpm_core Tpm_kv Tpm_subsys

lib/workload/generator.mli: Tpm_core Tpm_subsys

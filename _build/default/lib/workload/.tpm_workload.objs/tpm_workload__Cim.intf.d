lib/workload/cim.mli: Tpm_core Tpm_kv Tpm_subsys

(** The classic flex-transaction travel scenario: book a flight and a
    hotel, pay (the pivot), then send confirmations.  Two hotel options
    exist as alternatives: if the preferred hotel fails, the process
    compensates back and books the fallback; if payment fails, everything
    is compensated (backward recovery).

    Multiple trips for the same destination contend on seat and room
    counters, which makes the conflict structure interesting: bookings for
    the same flight conflict, bookings for different flights commute. *)

val subsystem_names : string list
(** airline, hotels, payment, notification. *)

val registry : trips:string list -> Tpm_subsys.Service.Registry.t
val rms :
  trips:string list ->
  ?fail_prob:(string -> float) ->
  ?seed:int ->
  unit ->
  Tpm_subsys.Rm.t list

val spec : trips:string list -> Tpm_core.Conflict.t

val booking : pid:int -> trip:string -> Tpm_core.Process.t
(** [book_flight^c << (book_hotel_a^c | book_hotel_b^c) << pay^p <<
    confirm^r << notify^r] — the hotels are preference-ordered
    alternatives. *)

val args_of : Tpm_core.Activity.t -> Tpm_kv.Value.t

open Tpm_core
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Value = Tpm_kv.Value
module Tx = Tpm_kv.Tx

let subsystem_names = [ "shop"; "warehouse"; "billing"; "shipping" ]

let counter tx key delta =
  let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
  Tx.set tx key (Value.Int (v + delta));
  Value.Int (v + delta)

let register_item reg item =
  let add = Service.Registry.register reg in
  let stock = "stock:" ^ item in
  add
    (Service.make
       ~name:("reserve:" ^ item)
       ~compensation:(Service.Inverse_service ("release:" ^ item))
       ~reads:[ stock ] ~writes:[ stock ]
       (fun tx ~args:_ -> counter tx stock (-1)));
  add
    (Service.make ~name:("release:" ^ item) ~reads:[ stock ] ~writes:[ stock ]
       (fun tx ~args:_ -> counter tx stock 1));
  add
    (Service.make
       ~name:("backorder:" ^ item)
       ~reads:[ "backlog:" ^ item ]
       ~writes:[ "backlog:" ^ item ]
       (fun tx ~args:_ -> counter tx ("backlog:" ^ item) 1))

let register_customer reg customer =
  let add = Service.Registry.register reg in
  let account = "account:" ^ customer in
  add
    (Service.make ~name:("charge:" ^ customer) ~reads:[ account ] ~writes:[ account ]
       (fun tx ~args -> counter tx account (match args with Value.Int n -> n | _ -> 42)));
  add
    (Service.make
       ~name:("validate:" ^ customer)
       ~compensation:Service.Snapshot_undo
       ~writes:[ "cart:" ^ customer ]
       (fun tx ~args:_ ->
         Tx.set tx ("cart:" ^ customer) (Value.Text "validated");
         Value.Bool true));
  add
    (Service.make ~name:("ship:" ^ customer) ~writes:[ "parcel:" ^ customer ]
       (fun tx ~args:_ ->
         Tx.set tx ("parcel:" ^ customer) (Value.Text "dispatched");
         Value.Bool true));
  add
    (Service.make ~name:("invoice:" ^ customer) ~writes:[ "invoice:" ^ customer ]
       (fun tx ~args:_ ->
         Tx.set tx ("invoice:" ^ customer) (Value.Text "issued");
         Value.Bool true))

let registry ~items ~customers =
  let reg = Service.Registry.create () in
  List.iter (register_item reg) items;
  List.iter (register_customer reg) customers;
  reg

let subsystem_of service =
  match String.split_on_char ':' service with
  | base :: _ -> (
      match base with
      | "validate" -> "shop"
      | "reserve" | "release" | "backorder" -> "warehouse"
      | "charge" -> "billing"
      | _ -> "shipping")
  | [] -> assert false

let rms ~items ~customers ?(fail_prob = fun _ -> 0.0) ?(seed = 23) () =
  let reg = registry ~items ~customers in
  List.mapi
    (fun i name -> Rm.create ~name ~registry:reg ~fail_prob ~seed:(seed + i) ())
    subsystem_names

let spec ~items ~customers = Service.Registry.conflict_spec (registry ~items ~customers)

let args_of (_ : Activity.t) = Value.Int 42

let order ~pid ~item ~customer =
  let a n service kind =
    Activity.make ~proc:pid ~act:n ~service ~kind ~subsystem:(subsystem_of service) ()
  in
  Process.make_exn ~pid
    ~activities:
      [
        a 1 ("validate:" ^ customer) Activity.Compensatable;
        a 2 ("reserve:" ^ item) Activity.Compensatable;
        a 3 ("charge:" ^ customer) Activity.Pivot;
        a 4 ("ship:" ^ customer) Activity.Retriable;
        a 5 ("invoice:" ^ customer) Activity.Retriable;
        a 6 ("backorder:" ^ item) Activity.Retriable;
      ]
    ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5); (1, 6) ]
    ~pref:[ ((1, 2), (1, 6)) ]

(** Fork composite schedules ([AFPS99]): one global process schedule whose
    activities execute as local transactions at several subsystem
    schedulers.

    Correctness of the composition requires (Section 3.6): the global
    schedule satisfies its criterion (PRED — checked by
    {!Tpm_core.Criteria}), every local schedule is commit-order
    serializable, and the weak order the global scheduler prescribes for
    conflicting activities co-located at a subsystem is realized by that
    subsystem's commit order. *)

type t = {
  global : Tpm_core.Schedule.t;
  locals : (string * Local.t) list;  (** one local schedule per subsystem *)
  token_of : Tpm_core.Activity.t -> int;
      (** local transaction identifier of an activity occurrence *)
}

val prescribed_weak_order : t -> string -> (int * int) list
(** The weak order the global schedule induces at one subsystem: for every
    conflicting pair of activities co-located there, the pair of their
    local transaction tokens in global-schedule order. *)

val locals_commit_order_serializable : t -> bool
val weak_order_realized : t -> bool

val consistent : t -> bool
(** All of: the global schedule is prefix-reducible, every local schedule
    is commit-order serializable, and every prescribed weak order is
    realized. *)

lib/composite/local.mli: Format

lib/composite/fork.ml: Activity Conflict Criteria List Local Schedule Tpm_core

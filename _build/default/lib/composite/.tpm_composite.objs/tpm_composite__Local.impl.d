lib/composite/local.ml: Format Hashtbl List Printf String Tpm_core

lib/composite/fork.mli: Local Tpm_core

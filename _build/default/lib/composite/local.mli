(** Local (subsystem-level) schedules of the composite-systems theory
    referenced in Section 3.6 ([ABFS97], [AFPS99]).

    A transactional process scheduler feeds activities to several
    subsystem schedulers — a {e fork} composite system.  Each activity
    runs as a local transaction: a sequence of read/write operations on
    the subsystem's items, closed by a local commit or abort.  The weak
    order of Section 3.6 permits two conflicting local transactions to
    execute overlapping as long as the subsystem serializes them in the
    prescribed order; a subsystem supports this by guaranteeing
    {e commit-order serializability}: conflicting operations occur in the
    same relative order as the local commits. *)

(** An operation of a local transaction on an item. *)
type op = {
  tx : int;  (** local transaction (= activity token) *)
  item : string;
  mode : [ `Read | `Write ];
}

type event =
  | Op of op
  | Commit of int
  | Abort of int

type t

val make : event list -> t
(** @raise Invalid_argument on operations after the transaction's
    terminal event. *)

val events : t -> event list
val transactions : t -> int list
val committed : t -> int list

val ops_conflict : op -> op -> bool
(** Different transactions touching the same item, at least one writing. *)

val conflict_pairs : t -> (int * int) list
(** Ordered pairs [(t1, t2)]: a committed operation of [t1] precedes a
    conflicting one of [t2].  Aborted transactions are excluded (their
    operations are undone locally). *)

val serializable : t -> bool
(** Conflict-serializability of the committed projection. *)

val commit_order_serializable : t -> bool
(** Serializable, and every conflicting committed pair runs its
    operations in the same relative order as its commits ([BBG89]'s
    commit-order property, the paper's requirement on subsystems that
    support the weak order). *)

val respects_weak_order : t -> (int * int) list -> bool
(** [respects_weak_order l pairs]: every prescribed weak-order pair
    [(t1, t2)] whose transactions both commit does so in that order. *)

val pp : Format.formatter -> t -> unit

open Tpm_core

type t = {
  global : Schedule.t;
  locals : (string * Local.t) list;
  token_of : Activity.t -> int;
}

let prescribed_weak_order f subsystem =
  let spec = Schedule.spec f.global in
  let here inst = (Activity.instance_base inst).Activity.subsystem = subsystem in
  let rec walk = function
    | [] -> []
    | x :: rest ->
        List.filter_map
          (fun y ->
            if
              here x && here y
              && Activity.instance_proc x <> Activity.instance_proc y
              && Conflict.conflicts spec x y
            then Some (f.token_of (Activity.instance_base x), f.token_of (Activity.instance_base y))
            else None)
          rest
        @ walk rest
  in
  List.sort_uniq compare (walk (Schedule.activities f.global))

let locals_commit_order_serializable f =
  List.for_all (fun (_, l) -> Local.commit_order_serializable l) f.locals

let weak_order_realized f =
  List.for_all
    (fun (name, l) -> Local.respects_weak_order l (prescribed_weak_order f name))
    f.locals

let consistent f =
  Criteria.pred f.global && locals_commit_order_serializable f && weak_order_realized f

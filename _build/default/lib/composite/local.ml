type op = {
  tx : int;
  item : string;
  mode : [ `Read | `Write ];
}

type event =
  | Op of op
  | Commit of int
  | Abort of int

type t = { evs : event list }

let make evs =
  let closed = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let tx = match ev with Op o -> o.tx | Commit tx | Abort tx -> tx in
      if Hashtbl.mem closed tx then
        invalid_arg (Printf.sprintf "Local.make: event after terminal event of tx %d" tx);
      match ev with Commit _ | Abort _ -> Hashtbl.replace closed tx () | Op _ -> ())
    evs;
  { evs }

let events l = l.evs

let transactions l =
  List.filter_map (function Op o -> Some o.tx | Commit tx | Abort tx -> Some tx) l.evs
  |> List.sort_uniq compare

let committed l =
  List.filter_map (function Commit tx -> Some tx | Op _ | Abort _ -> None) l.evs
  |> List.sort_uniq compare

let ops_conflict a b =
  a.tx <> b.tx && String.equal a.item b.item && (a.mode = `Write || b.mode = `Write)

let committed_ops l =
  let committed = committed l in
  List.filter_map
    (function Op o when List.mem o.tx committed -> Some o | Op _ | Commit _ | Abort _ -> None)
    l.evs

let conflict_pairs l =
  let rec walk = function
    | [] -> []
    | o :: rest ->
        List.filter_map (fun o' -> if ops_conflict o o' then Some (o.tx, o'.tx) else None) rest
        @ walk rest
  in
  List.sort_uniq compare (walk (committed_ops l))

let serializable l =
  not
    (Tpm_core.Digraph.has_cycle
       (Tpm_core.Digraph.make ~nodes:(committed l) ~edges:(conflict_pairs l)))

let commit_pos l tx =
  let rec go i = function
    | [] -> max_int
    | Commit tx' :: _ when tx' = tx -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 l.evs

let commit_order_serializable l =
  serializable l
  && List.for_all (fun (t1, t2) -> commit_pos l t1 < commit_pos l t2) (conflict_pairs l)

let respects_weak_order l pairs =
  let committed = committed l in
  List.for_all
    (fun (t1, t2) ->
      (not (List.mem t1 committed && List.mem t2 committed))
      || commit_pos l t1 < commit_pos l t2)
    pairs

let pp fmt l =
  let pp_event fmt = function
    | Op { tx; item; mode } ->
        Format.fprintf fmt "%s%d[%s]" (match mode with `Read -> "r" | `Write -> "w") tx item
    | Commit tx -> Format.fprintf fmt "c%d" tx
    | Abort tx -> Format.fprintf fmt "a%d" tx
  in
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_event)
    l.evs

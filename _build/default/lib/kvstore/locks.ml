type mode =
  | Shared
  | Exclusive

type t = { table : (string, (int * mode) list ref) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.table key r;
      r

let acquire t ~owner ~mode key =
  let r = entry t key in
  let others = List.filter (fun (o, _) -> o <> owner) !r in
  let mine = List.filter (fun (o, _) -> o = owner) !r in
  let compatible =
    match mode with
    | Shared -> List.for_all (fun (_, m) -> m = Shared) others
    | Exclusive -> others = []
  in
  if not compatible then Error (List.sort_uniq compare (List.map fst others))
  else begin
    let upgraded =
      match (mine, mode) with
      | [], _ -> [ (owner, mode) ]
      | _ :: _, Exclusive -> [ (owner, Exclusive) ]
      | (_, Exclusive) :: _, Shared -> [ (owner, Exclusive) ]
      | (_, Shared) :: _, Shared -> [ (owner, Shared) ]
    in
    r := upgraded @ others;
    Ok ()
  end

let release_all t ~owner =
  Hashtbl.iter (fun _ r -> r := List.filter (fun (o, _) -> o <> owner) !r) t.table

let holders t key = match Hashtbl.find_opt t.table key with Some r -> !r | None -> []

let held_by t ~owner =
  Hashtbl.fold
    (fun key r acc -> if List.exists (fun (o, _) -> o = owner) !r then key :: acc else acc)
    t.table []
  |> List.sort compare

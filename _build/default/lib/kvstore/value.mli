(** Values stored by the simulated subsystems and returned by service
    invocations. *)

type t =
  | Nil
  | Bool of bool
  | Int of int
  | Text of string
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int_exn : t -> int
(** @raise Invalid_argument when the value is not an [Int]. *)

val text_exn : t -> string
(** @raise Invalid_argument when the value is not a [Text]. *)

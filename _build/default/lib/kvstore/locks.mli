(** A key-level lock table with shared/exclusive modes, used by resource
    managers to hold the effects of prepared (deferred-commit) activities
    and to enforce weak orders (paper, Sections 3.5 and 3.6).

    Owners are integers (transaction identifiers).  The table never
    blocks — acquisition either succeeds or reports the conflicting
    owners, and the caller decides to wait, retry or abort. *)

type mode =
  | Shared
  | Exclusive

type t

val create : unit -> t

val acquire : t -> owner:int -> mode:mode -> string -> (unit, int list) result
(** Re-entrant; lock upgrade from shared to exclusive succeeds when the
    caller is the only shared holder.  On refusal, returns the blocking
    owners. *)

val release_all : t -> owner:int -> unit
val holders : t -> string -> (int * mode) list
val held_by : t -> owner:int -> string list

lib/kvstore/locks.ml: Hashtbl List

lib/kvstore/locks.mli:

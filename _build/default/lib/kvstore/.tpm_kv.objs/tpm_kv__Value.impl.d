lib/kvstore/value.ml: Format List Printf Stdlib String

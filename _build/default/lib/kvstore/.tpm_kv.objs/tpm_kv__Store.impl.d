lib/kvstore/store.ml: Format Hashtbl List Option String Value

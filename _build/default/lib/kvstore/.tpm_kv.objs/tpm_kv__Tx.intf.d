lib/kvstore/tx.mli: Store Value

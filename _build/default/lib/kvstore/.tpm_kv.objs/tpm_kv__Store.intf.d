lib/kvstore/store.mli: Format Value

lib/kvstore/tx.ml: List Map Printf Store String Value

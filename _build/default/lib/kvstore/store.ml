type t = {
  data : (string, Value.t) Hashtbl.t;
  mutable version : int;
}

let create () = { data = Hashtbl.create 64; version = 0 }
let get store key = Option.value ~default:Value.Nil (Hashtbl.find_opt store.data key)

let set store key value =
  store.version <- store.version + 1;
  Hashtbl.replace store.data key value

let delete store key =
  store.version <- store.version + 1;
  Hashtbl.remove store.data key

let mem store key = Hashtbl.mem store.data key

let keys store =
  Hashtbl.fold (fun k _ acc -> k :: acc) store.data [] |> List.sort compare

let version store = store.version

let snapshot store =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) store.data [] |> List.sort compare

let restore store entries =
  Hashtbl.reset store.data;
  store.version <- store.version + 1;
  List.iter (fun (k, v) -> Hashtbl.replace store.data k v) entries

let copy store =
  let fresh = create () in
  restore fresh (snapshot store);
  fresh

let equal_state a b =
  let sa = snapshot a and sb = snapshot b in
  List.length sa = List.length sb
  && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && Value.equal v v') sa sb

let pp fmt store =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list (fun fmt (k, v) -> Format.fprintf fmt "%s = %a" k Value.pp v))
    (snapshot store)

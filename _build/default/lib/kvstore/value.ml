type t =
  | Nil
  | Bool of bool
  | Int of int
  | Text of string
  | List of t list

let rec equal a b =
  match (a, b) with
  | Nil, Nil -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Text x, Text y -> String.equal x y
  | List x, List y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | (Nil | Bool _ | Int _ | Text _ | List _), _ -> false

let compare = Stdlib.compare

let rec pp fmt = function
  | Nil -> Format.pp_print_string fmt "nil"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Text s -> Format.fprintf fmt "%S" s
  | List l ->
      Format.fprintf fmt "[%a]"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp)
        l

let to_string v = Format.asprintf "%a" pp v

let int_exn = function
  | Int i -> i
  | (Nil | Bool _ | Text _ | List _) as v ->
      invalid_arg (Printf.sprintf "Value.int_exn: %s" (to_string v))

let text_exn = function
  | Text s -> s
  | (Nil | Bool _ | Int _ | List _) as v ->
      invalid_arg (Printf.sprintf "Value.text_exn: %s" (to_string v))

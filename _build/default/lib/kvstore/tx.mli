(** Local transactions over a {!Store}: buffered writes with
    read-your-own-writes, applied atomically on commit and discarded on
    abort.  Activities of transactional processes execute as exactly one
    such local transaction in their subsystem (paper, Section 2.3). *)

type t

val begin_ : Store.t -> t
val get : t -> string -> Value.t
val set : t -> string -> Value.t -> unit
val delete : t -> string -> unit

val read_set : t -> string list
val write_set : t -> string list

val commit : t -> unit
(** Applies all buffered writes to the store.
    @raise Invalid_argument if the transaction already terminated. *)

val abort : t -> unit
(** Discards the buffer. Idempotent on an unterminated transaction only. *)

val undo_entries : t -> (string * Value.t) list
(** Pre-images of the written keys, captured at first write; applying them
    restores the store to its state before the transaction (used by
    agent-style compensation). Meaningful after [commit]. *)

val active : t -> bool

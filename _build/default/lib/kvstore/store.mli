(** A versioned key-value store, the state each simulated subsystem acts
    on.  Every write bumps a global version; snapshots allow observational
    comparisons (used to validate effect-freeness and commutativity of
    services, Definitions 1 and 6). *)

type t

val create : unit -> t

val get : t -> string -> Value.t
(** [Nil] for absent keys. *)

val set : t -> string -> Value.t -> unit
val delete : t -> string -> unit
val mem : t -> string -> bool
val keys : t -> string list
val version : t -> int
(** Monotone write counter. *)

val snapshot : t -> (string * Value.t) list
(** Sorted key-value pairs. *)

val restore : t -> (string * Value.t) list -> unit
(** Replaces the whole content. *)

val copy : t -> t
val equal_state : t -> t -> bool
val pp : Format.formatter -> t -> unit

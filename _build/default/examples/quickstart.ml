(* Quickstart: define a transactional process, inspect its structure, run
   it on a simulated subsystem, and check the resulting schedule against
   the paper's correctness criteria.

     dune exec examples/quickstart.exe *)

open Tpm_core
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Scheduler = Tpm_scheduler.Scheduler
module Tx = Tpm_kv.Tx
module Value = Tpm_kv.Value

let () =
  (* 1. Declare the services a subsystem offers.  Footprints drive the
     derived conflict relation; compensation declares how committed
     effects can be undone. *)
  let reg = Service.Registry.create () in
  Service.Registry.register reg
    (Service.make ~name:"deposit" ~reads:[ "balance" ] ~writes:[ "balance" ]
       ~compensation:(Service.Inverse_service "withdraw")
       (fun tx ~args ->
         let amount = Value.int_exn args in
         let balance = match Tx.get tx "balance" with Value.Int n -> n | _ -> 0 in
         Tx.set tx "balance" (Value.Int (balance + amount));
         Value.Int (balance + amount)));
  Service.Registry.register reg
    (Service.make ~name:"withdraw" ~reads:[ "balance" ] ~writes:[ "balance" ]
       (fun tx ~args ->
         let amount = Value.int_exn args in
         let balance = match Tx.get tx "balance" with Value.Int n -> n | _ -> 0 in
         Tx.set tx "balance" (Value.Int (balance - amount));
         Value.Int (balance - amount)));
  Service.Registry.register reg
    (Service.make ~name:"audit" ~writes:[ "audit" ]
       (fun tx ~args:_ ->
         Tx.set tx "audit" (Value.Text "ok");
         Value.Bool true));

  (* 2. Define a process: deposit (compensatable), audit (pivot), and a
     retriable notification tail. *)
  let act n service kind =
    Activity.make ~proc:1 ~act:n ~service ~kind ~subsystem:"bank" ()
  in
  let process =
    Process.make_exn ~pid:1
      ~activities:
        [
          act 1 "deposit" Activity.Compensatable;
          act 2 "audit" Activity.Pivot;
          act 3 "deposit" Activity.Retriable;
        ]
      ~prec:[ (1, 2); (2, 3) ]
      ~pref:[]
  in
  Format.printf "process:@.%a@.@." Process.pp process;
  Format.printf "well-formed flex structure: %b@."
    (Result.is_ok (Flex.well_formed process));
  Format.printf "guaranteed termination:     %b@.@." (Flex.guaranteed_termination process);

  (* 3. Run it through the PRED scheduler on one resource manager. *)
  let rm = Rm.create ~name:"bank" ~registry:reg () in
  let spec = Service.Registry.conflict_spec reg in
  let t = Scheduler.create ~spec ~rms:[ rm ] () in
  Scheduler.submit t ~args_of:(fun _ -> Value.Int 100) process;
  Scheduler.run t;

  let history = Scheduler.history t in
  Format.printf "history:  %a@." Schedule.pp history;
  Format.printf "status:   %s@."
    (match Scheduler.status t 1 with
    | Schedule.Committed -> "committed"
    | Schedule.Aborted -> "aborted"
    | Schedule.Active -> "active");
  Format.printf "balance:  %a@." Value.pp (Tpm_kv.Store.get (Rm.store rm) "balance");

  (* 4. Check the emitted schedule against the paper's criteria. *)
  Format.printf "legal:        %b@." (Schedule.legal history);
  Format.printf "serializable: %b@." (Criteria.serializable history);
  Format.printf "reducible:    %b@." (Criteria.red history);
  Format.printf "PRED:         %b@." (Criteria.pred history)

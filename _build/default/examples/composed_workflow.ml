(* Building processes with the combinator DSL, deriving the transactional
   guarantee of a whole subprocess (the paper's future-work direction),
   inlining it into a parent workflow, exporting the result as Graphviz
   DOT, and running the composition end to end.

     dune exec examples/composed_workflow.exe *)

open Tpm_core
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Scheduler = Tpm_scheduler.Scheduler
module Tx = Tpm_kv.Tx
module Value = Tpm_kv.Value

let kind_name = function
  | Activity.Compensatable -> "compensatable"
  | Activity.Pivot -> "pivot"
  | Activity.Retriable -> "retriable"

let () =
  (* a fulfilment subprocess: reserve (undoable), charge (the point of no
     return), ship (guaranteed) — with a backorder fallback *)
  let fulfilment =
    Builder.(
      build_exn ~pid:99
        (seq
           [
             step ~service:"reserve" Activity.Compensatable;
             alternatives
               [
                 seq
                   [
                     step ~service:"charge" Activity.Pivot;
                     step ~service:"ship" Activity.Retriable;
                   ];
                 seq [ step ~service:"backorder" Activity.Retriable ];
               ];
           ]))
  in
  let guarantee = Result.get_ok (Compose.classify fulfilment) in
  Format.printf "the fulfilment subprocess acts as a single %s activity@.@."
    (kind_name guarantee);

  (* the parent workflow treats fulfilment as one placeholder activity; the
     child has several exit branches, so it sits last (inlining refuses to
     create joins — processes are trees) *)
  let parent =
    Builder.(
      build_exn ~pid:1
        (seq
           [
             step ~service:"validate" Activity.Compensatable;
             step ~service:"record" Activity.Compensatable;
             step ~service:"fulfil" guarantee;
           ]))
  in
  let workflow =
    match Compose.inline ~parent ~at:3 ~child:fulfilment with
    | Ok p -> p
    | Error e -> failwith (Format.asprintf "%a" Compose.pp_error e)
  in
  Format.printf "composed workflow:@.%a@.@." Process.pp workflow;
  Format.printf "well-formed: %b, guaranteed termination: %b@.@."
    (Result.is_ok (Flex.well_formed workflow))
    (Flex.guaranteed_termination workflow);
  Format.printf "valid executions:@.";
  List.iter
    (fun tr ->
      Format.printf "  <%a>@."
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ") Activity.pp_instance)
        tr)
    (Execution.valid_executions workflow);

  (* DOT export, e.g. pipe through `dot -Tsvg` *)
  Format.printf "@.graphviz:@.%s@." (Dot.process workflow);

  (* and run it: services over one simulated subsystem; the charge pivot
     fails, so the workflow compensates the branch and falls back to the
     backorder alternative *)
  let reg = Service.Registry.create () in
  let plain name =
    Service.Registry.register reg
      (Service.make ~name ~compensation:Service.Snapshot_undo ~writes:[ name ]
         (fun tx ~args:_ ->
           Tx.set tx name (Value.Bool true);
           Value.Bool true))
  in
  List.iter plain [ "validate"; "record"; "reserve"; "charge"; "ship"; "backorder" ];
  let rm =
    Rm.create ~name:"default" ~registry:reg
      ~fail_prob:(fun s -> if s = "charge" then 1.0 else 0.0)
      ~max_failures:3 ()
  in
  let spec = Service.Registry.conflict_spec reg in
  let t = Scheduler.create ~spec ~rms:[ rm ] () in
  Scheduler.submit t workflow;
  Scheduler.run t;
  Format.printf "run:    %a@." Schedule.pp (Scheduler.history t);
  Format.printf "status: %s@."
    (match Scheduler.status t 1 with
    | Schedule.Committed -> "committed"
    | Schedule.Aborted -> "aborted"
    | Schedule.Active -> "active");
  Format.printf "PRED:   %b@." (Criteria.pred (Scheduler.history t))

(* The CIM scenario of the paper's figure 1, end to end: a construction
   process and a production process for the same part, executed
   concurrently over six simulated subsystems.

   Three runs are shown:
   - the happy path, where the PRED scheduler defers the production pivot
     until the construction process commits;
   - the failure path of Section 2.2, where the construction test fails,
     the PDM entry is compensated and the dependent production process
     cascades;
   - a crash of the scheduler mid-run, recovered from the write-ahead log.

     dune exec examples/cim_scenario.exe *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Cim = Tpm_workload.Cim
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value

let part = "boiler-7"

let dump_stores rms =
  List.iter
    (fun rm ->
      let snapshot = Store.snapshot (Rm.store rm) in
      if snapshot <> [] then begin
        Format.printf "  %s:@." (Rm.name rm);
        List.iter (fun (k, v) -> Format.printf "    %s = %a@." k Value.pp v) snapshot
      end)
    rms

let report t =
  let h = Scheduler.history t in
  Format.printf "  schedule: %a@." Schedule.pp h;
  Format.printf "  construction: %s, production: %s@."
    (match Scheduler.status t 1 with
    | Schedule.Committed -> "committed"
    | Schedule.Aborted -> "aborted"
    | Schedule.Active -> "active")
    (match Scheduler.status t 2 with
    | Schedule.Committed -> "committed"
    | Schedule.Aborted -> "aborted"
    | Schedule.Active -> "active");
  Format.printf "  PRED: %b   makespan: %.1f@." (Criteria.pred h) (Scheduler.now t)

let happy_path () =
  Format.printf "=== happy path ===============================================@.";
  let parts = [ part ] in
  let rms = Cim.rms ~parts () in
  let config =
    {
      Scheduler.default_config with
      service_time = (fun s -> if s = "tech_doc:" ^ part then 5.0 else 1.0);
    }
  in
  let t = Scheduler.create ~config ~spec:(Cim.spec ~parts) ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part);
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part);
  Scheduler.run t;
  report t;
  dump_stores rms

let test_failure_path () =
  Format.printf "@.=== test failure (Section 2.2) ==============================@.";
  let parts = [ part ] in
  let rms =
    Cim.rms ~parts ~fail_prob:(fun s -> if s = "test:" ^ part then 1.0 else 0.0) ()
  in
  let config =
    {
      Scheduler.default_config with
      service_time = (fun s -> if s = "test:" ^ part then 3.0 else 1.0);
    }
  in
  let t = Scheduler.create ~config ~spec:(Cim.spec ~parts) ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part);
  Scheduler.submit t ~at:2.2 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part);
  Scheduler.run t;
  report t;
  Format.printf "  (the production process read the BOM and had to cascade;@.";
  Format.printf "   the drawing was archived for later reuse instead)@.";
  dump_stores rms

let crash_and_recover () =
  Format.printf "@.=== crash and recovery ======================================@.";
  let parts = [ part ] in
  let rms = Cim.rms ~parts () in
  let construction = Cim.construction ~pid:1 ~part in
  let production = Cim.production ~pid:2 ~part in
  let t = Scheduler.create ~spec:(Cim.spec ~parts) ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of production;
  Scheduler.run ~until:4.6 t;
  Format.printf "  crash at t=%.1f, %d WAL records@." (Scheduler.now t)
    (List.length (Scheduler.wal_records t));
  let records = Scheduler.crash t in
  match Scheduler.recover ~spec:(Cim.spec ~parts) ~rms ~procs:[ construction; production ] records with
  | Error e -> Format.printf "  recovery failed: %s@." e
  | Ok t2 ->
      Scheduler.run t2;
      Format.printf "  recovery schedule: %a@." Schedule.pp (Scheduler.history t2);
      Format.printf "  construction: %s, production: %s@."
        (match Scheduler.status t2 1 with
        | Schedule.Committed -> "committed"
        | Schedule.Aborted -> "aborted"
        | Schedule.Active -> "active")
        (match Scheduler.status t2 2 with
        | Schedule.Committed -> "committed"
        | Schedule.Aborted -> "aborted"
        | Schedule.Active -> "active");
      dump_stores rms

let () =
  happy_path ();
  test_failure_path ();
  crash_and_recover ()

examples/cim_scenario.mli:

examples/composed_workflow.ml: Activity Builder Compose Criteria Dot Execution Flex Format List Process Result Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_subsys

examples/composed_workflow.mli:

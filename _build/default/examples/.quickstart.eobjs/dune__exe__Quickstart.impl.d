examples/quickstart.ml: Activity Criteria Flex Format Process Result Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_subsys

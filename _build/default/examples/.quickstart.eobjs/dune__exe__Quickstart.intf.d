examples/quickstart.mli:

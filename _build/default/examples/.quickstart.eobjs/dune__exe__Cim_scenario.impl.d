examples/cim_scenario.ml: Criteria Format List Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_subsys Tpm_workload

examples/ecommerce_orders.ml: Format List Process Schedule String Tpm_core Tpm_kv Tpm_scheduler Tpm_sim Tpm_subsys Tpm_workload

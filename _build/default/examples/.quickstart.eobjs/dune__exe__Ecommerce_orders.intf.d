examples/ecommerce_orders.mli:

examples/travel_booking.ml: Criteria Format List Schedule Tpm_core Tpm_kv Tpm_scheduler Tpm_sim Tpm_subsys Tpm_workload

(* Travel booking with alternatives: several customers book the same trip
   concurrently; hotel A fills up (injected failures) so some bookings
   fall through to hotel B; one payment failure triggers full backward
   recovery.

     dune exec examples/travel_booking.exe *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Travel = Tpm_workload.Travel
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value
module Metrics = Tpm_sim.Metrics

let trip = "zrh-syd"

let () =
  let trips = [ trip ] in
  (* hotel A fails 60% of the time, payment 15% *)
  let fail_prob s =
    if s = "book_hotel_a:" ^ trip then 0.6
    else if s = "pay:" ^ trip then 0.15
    else 0.0
  in
  let rms = Travel.rms ~trips ~fail_prob ~seed:2026 () in
  let t = Scheduler.create ~spec:(Travel.spec ~trips) ~rms () in
  let n = 8 in
  for pid = 1 to n do
    Scheduler.submit t
      ~at:(0.4 *. float_of_int (pid - 1))
      ~args_of:Travel.args_of
      (Travel.booking ~pid ~trip)
  done;
  Scheduler.run t;

  let committed = ref 0 and aborted = ref 0 in
  for pid = 1 to n do
    match Scheduler.status t pid with
    | Schedule.Committed -> incr committed
    | Schedule.Aborted -> incr aborted
    | Schedule.Active -> ()
  done;
  Format.printf "bookings: %d committed, %d rolled back (of %d)@." !committed !aborted n;

  let airline = List.find (fun rm -> Rm.name rm = "airline") rms in
  let hotels = List.find (fun rm -> Rm.name rm = "hotels") rms in
  let payment = List.find (fun rm -> Rm.name rm = "payment") rms in
  let seats = Store.get (Rm.store airline) ("seats:" ^ trip) in
  let rooms_a = Store.get (Rm.store hotels) ("rooms_a:" ^ trip) in
  let rooms_b = Store.get (Rm.store hotels) ("rooms_b:" ^ trip) in
  let ledger = Store.get (Rm.store payment) ("ledger:" ^ trip) in
  Format.printf "seats booked: %a  (hotel A: %a, hotel B: %a)  ledger: %a@." Value.pp seats
    Value.pp rooms_a Value.pp rooms_b Value.pp ledger;

  (* consistency: committed bookings = seats = rooms_a + rooms_b = ledger/100 *)
  let as_int = function Value.Int n -> n | _ -> 0 in
  assert (as_int seats = !committed);
  assert (as_int rooms_a + as_int rooms_b = !committed);
  assert (as_int ledger = 100 * !committed);

  let h = Scheduler.history t in
  Format.printf "history is legal: %b, PRED: %b@." (Schedule.legal h) (Criteria.pred h);
  let m = Scheduler.metrics t in
  Format.printf "retries: %d, compensations: %d, cascades: %d, makespan: %.1f@."
    (Metrics.count m "retries") (Metrics.count m "compensations")
    (Metrics.count m "cascaded_aborts") (Scheduler.now t)

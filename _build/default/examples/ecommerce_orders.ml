(* E-commerce order pipelines (the WISE-style motivation of the paper):
   a stream of orders over shared items and customer accounts, with
   failure injection, a scheduler crash in the middle of the run, and
   recovery from the write-ahead log.

     dune exec examples/ecommerce_orders.exe *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Ecommerce = Tpm_workload.Ecommerce
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value
module Metrics = Tpm_sim.Metrics

let items = [ "widget"; "sprocket"; "gizmo" ]
let customers = [ "acme"; "umbrella"; "initech" ]

let () =
  let fail_prob s = if String.length s >= 7 && String.sub s 0 7 = "reserve" then 0.25 else 0.0 in
  let rms = Ecommerce.rms ~items ~customers ~fail_prob ~seed:7 () in
  let spec = Ecommerce.spec ~items ~customers in
  let config = { Scheduler.default_config with stochastic_times = true; seed = 99 } in
  let t = Scheduler.create ~config ~spec ~rms () in
  let n = 12 in
  let procs =
    List.init n (fun i ->
        let item = List.nth items (i mod List.length items) in
        let customer = List.nth customers (i mod List.length customers) in
        Ecommerce.order ~pid:(i + 1) ~item ~customer)
  in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.5 *. float_of_int i) ~args_of:Ecommerce.args_of p)
    procs;

  (* crash mid-stream *)
  Scheduler.run ~until:4.0 t;
  Format.printf "crash at t=%.1f with %d/%d orders done@." (Scheduler.now t)
    (List.length
       (List.filter
          (fun p -> Scheduler.status t (Process.pid p) <> Schedule.Active)
          procs))
    n;
  let records = Scheduler.crash t in

  match Scheduler.recover ~config ~spec ~rms ~procs records with
  | Error e -> Format.printf "recovery failed: %s@." e
  | Ok t2 ->
      (* recovery completes the interrupted orders; new work keeps arriving *)
      Scheduler.run t2;
      Format.printf "after recovery, interrupted orders completed@.";
      let committed = ref 0 and aborted = ref 0 in
      List.iter
        (fun p ->
          match Scheduler.status t2 (Process.pid p) with
          | Schedule.Committed -> incr committed
          | Schedule.Aborted -> incr aborted
          | Schedule.Active -> (
              match Scheduler.status t (Process.pid p) with
              | Schedule.Committed -> incr committed
              | Schedule.Aborted -> incr aborted
              | Schedule.Active -> ()))
        procs;
      Format.printf "orders: %d committed, %d rolled back, of %d submitted before the crash@."
        !committed !aborted n;
      List.iter
        (fun item ->
          Format.printf "  stock %-9s %a   backlog %a@." item Value.pp
            (Store.get
               (Rm.store (List.find (fun rm -> Rm.name rm = "warehouse") rms))
               ("stock:" ^ item))
            Value.pp
            (Store.get
               (Rm.store (List.find (fun rm -> Rm.name rm = "warehouse") rms))
               ("backlog:" ^ item)))
        items;
      List.iter
        (fun customer ->
          Format.printf "  account %-9s %a@." customer Value.pp
            (Store.get
               (Rm.store (List.find (fun rm -> Rm.name rm = "billing") rms))
               ("account:" ^ customer)))
        customers;
      let m = Scheduler.metrics t2 in
      Format.printf "recovered processes: %d, compensations during recovery: %d@."
        (Metrics.count m "recovered_processes")
        (Metrics.count m "compensations")
